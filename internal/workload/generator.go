package workload

import (
	"repro/internal/rng"
	"repro/internal/uop"
)

// Generator produces a deterministic stream of micro-ops for one profile.
// It is the execution-trace substitute described in DESIGN.md §2: the
// static content of every trace-cache line (op classes, PCs, line length)
// is a pure function of its trace ID, so the trace cache behaves as it
// would for real code, while dynamic properties (operand distances,
// addresses, branch outcomes) vary per execution of the line.
type Generator struct {
	prof  Profile
	src   *rng.Source
	total uint64
	count uint64

	// Current trace-line buffer.
	buf    [uop.MaxTraceOps]uop.MicroOp
	bufLen int
	bufPos int

	// Phase state (hot = small skewed trace working set).
	phaseLeft int
	hot       bool

	// Register dependency state: ring buffers of recently written logical
	// registers, one per register space.  lastAddr tracks registers
	// written by non-load integer ops: address bases are drawn from it,
	// modelling induction-variable-driven addressing (array walks do not
	// chase loaded pointers; see PtrChaseFrac).
	lastInt  [64]int8
	nInt     uint64
	lastFP   [64]int8
	nFP      uint64
	lastAddr [64]int8
	nAddr    uint64
	rrInt    int8
	rrFP     int8
	rrInd    int8 // round-robin over the induction registers

	// Memory stream state.
	streamPos  [4]uint64
	streamBase [4]uint64
	nextStream int
	hotBase    uint64

	// Per-trace loop counters driving structured branch outcomes.
	loopState map[uint64]uint8
}

// NewGenerator returns a generator that will emit totalOps micro-ops
// (scaled by the profile's LengthScale) for profile p.
func NewGenerator(p Profile, totalOps uint64) *Generator {
	p = p.defaults()
	g := &Generator{
		prof:  p,
		src:   rng.New(p.Seed),
		total: uint64(float64(totalOps) * p.LengthScale),
	}
	if g.total == 0 {
		g.total = 1
	}
	for i := range g.lastInt {
		g.lastInt[i] = int8(i % uop.NumIntRegs)
	}
	for i := range g.lastAddr {
		g.lastAddr[i] = int8(i % uop.NumIntRegs)
	}
	for i := range g.lastFP {
		g.lastFP[i] = int8(uop.NumIntRegs + i%uop.NumFPRegs)
	}
	for s := range g.streamBase {
		g.streamBase[s] = g.src.Uint64n(p.DataWS &^ 63)
	}
	g.hotBase = g.src.Uint64n(p.DataWS-p.HotDataB+1) &^ 63
	g.loopState = make(map[uint64]uint8)
	g.hot = true
	g.phaseLeft = p.PhaseLen
	return g
}

// Total returns the number of micro-ops the generator will emit.
func (g *Generator) Total() uint64 { return g.total }

// Emitted returns the number of micro-ops emitted so far.
func (g *Generator) Emitted() uint64 { return g.count }

// Next returns the next micro-op.  ok is false when the stream is
// exhausted.
func (g *Generator) Next() (op uop.MicroOp, ok bool) {
	if g.count >= g.total {
		return uop.MicroOp{}, false
	}
	if g.bufPos >= g.bufLen {
		g.fillTrace()
	}
	op = g.buf[g.bufPos]
	g.bufPos++
	op.Seq = g.count
	g.count++
	return op, true
}

// hash64 is a fixed 64-bit mix function (splitmix64 finalizer) used to
// derive the static content of a trace line from its ID.
func hash64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// classAt returns the stable op class of slot i of trace id, drawn from
// the profile's instruction mix.
func (g *Generator) classAt(id uint64, slot int) uop.Class {
	p := &g.prof
	u := float64(hash64(id*uop.MaxTraceOps+uint64(slot))>>11) / (1 << 53)
	switch {
	case u < p.FracBranch:
		return uop.Branch
	case u < p.FracBranch+p.FracLoad:
		return uop.Load
	case u < p.FracBranch+p.FracLoad+p.FracStore:
		return uop.Store
	case u < p.FracBranch+p.FracLoad+p.FracStore+p.FracFPAdd:
		return uop.FPAdd
	case u < p.FracBranch+p.FracLoad+p.FracStore+p.FracFPAdd+p.FracFPMul:
		return uop.FPMul
	case u < p.FracBranch+p.FracLoad+p.FracStore+p.FracFPAdd+p.FracFPMul+p.FracFPDiv:
		return uop.FPDiv
	case u < p.FracBranch+p.FracLoad+p.FracStore+p.FracFPAdd+p.FracFPMul+p.FracFPDiv+p.FracIntMul:
		return uop.IntMul
	case u < p.FracBranch+p.FracLoad+p.FracStore+p.FracFPAdd+p.FracFPMul+p.FracFPDiv+p.FracIntMul+p.FracIntDiv:
		return uop.IntDiv
	default:
		return uop.IntALU
	}
}

// TraceLen returns the static length of trace id: slots up to and
// including the first Branch, capped at uop.MaxTraceOps.
func (g *Generator) TraceLen(id uint64) int {
	for i := 0; i < uop.MaxTraceOps; i++ {
		if g.classAt(id, i) == uop.Branch {
			return i + 1
		}
	}
	return uop.MaxTraceOps
}

// pickTrace selects the next trace ID according to the current phase.
func (g *Generator) pickTrace() uint64 {
	p := &g.prof
	if g.phaseLeft <= 0 {
		g.phaseLeft = p.PhaseLen
		g.hot = g.src.Bool(p.HotFrac)
	}
	var idx int
	if g.hot {
		idx = g.src.Zipf(p.HotTraces, p.TraceTheta)
	} else {
		idx = g.src.Zipf(p.ColdTraces, 0.25)
	}
	// The hot working set is a subset of the cold one (hot loops live
	// inside the full program), so both phases share low indices.
	return hash64(p.Seed ^ uint64(idx)*0x9E3779B97F4A7C15)
}

// srcIntReg returns a source register with geometric dependency distance
// over recently written integer registers.
func (g *Generator) srcIntReg() int8 {
	d := uint64(g.src.Geometric(g.prof.DepDistMean))
	if d > g.nInt {
		d = g.nInt
	}
	if d == 0 {
		return 0
	}
	return g.lastInt[(g.nInt-d)%uint64(len(g.lastInt))]
}

// srcFPReg returns a source register over recently written FP registers.
func (g *Generator) srcFPReg() int8 {
	d := uint64(g.src.Geometric(g.prof.DepDistMean))
	if d > g.nFP {
		d = g.nFP
	}
	if d == 0 {
		return uop.NumIntRegs
	}
	return g.lastFP[(g.nFP-d)%uint64(len(g.lastFP))]
}

// allocIntDst cycles destinations round-robin through the integer space so
// realized dependency distances stay close to the drawn ones.  Destinations
// of non-load producers additionally feed the address-base ring.
func (g *Generator) allocIntDst(fromLoad bool) int8 {
	r := numInductionRegs + g.rrInt
	g.rrInt = (g.rrInt + 1) % (uop.NumIntRegs - numInductionRegs)
	g.lastInt[g.nInt%uint64(len(g.lastInt))] = r
	g.nInt++
	if !fromLoad {
		g.lastAddr[g.nAddr%uint64(len(g.lastAddr))] = r
		g.nAddr++
	}
	return r
}

// numInductionRegs reserves the low integer registers for loop induction
// variables: registers that are updated from themselves by 1-cycle ALU
// ops (i = i + stride), forming dependence chains independent of memory.
// Real array codes derive their addresses from such registers, which is
// what lets load misses overlap.
const numInductionRegs = 4

// srcAddrReg returns an address-base register.  Most addresses derive from
// induction variables; the rest use a recent ALU result or — rarely —
// chase a loaded value, as in linked-data-structure codes.
func (g *Generator) srcAddrReg() int8 {
	const ptrChaseFrac = 0.06
	const aluAddrFrac = 0.15
	u := g.src.Float64()
	switch {
	case u < ptrChaseFrac:
		return g.srcIntReg()
	case u < ptrChaseFrac+aluAddrFrac:
		d := uint64(g.src.Geometric(g.prof.DepDistMean))
		if d > g.nAddr {
			d = g.nAddr
		}
		if d == 0 {
			return 0
		}
		return g.lastAddr[(g.nAddr-d)%uint64(len(g.lastAddr))]
	default:
		return int8(g.src.Intn(numInductionRegs))
	}
}

func (g *Generator) allocFPDst() int8 {
	r := uop.NumIntRegs + g.rrFP
	g.rrFP = (g.rrFP + 1) % uop.NumFPRegs
	g.lastFP[g.nFP%uint64(len(g.lastFP))] = r
	g.nFP++
	return r
}

// memAddr produces the next data address: a streaming (strided) access
// with probability StrideFrac, otherwise a pseudo-random access within the
// data working set.
func (g *Generator) memAddr() uint64 {
	p := &g.prof
	if g.src.Bool(p.StrideFrac) {
		s := g.nextStream
		g.nextStream = (g.nextStream + 1) % len(g.streamPos)
		g.streamPos[s] += 16
		if g.streamPos[s] >= p.DataWS/4 {
			g.streamPos[s] = 0
			g.streamBase[s] = g.src.Uint64n(p.DataWS &^ 63)
		}
		return (g.streamBase[s] + g.streamPos[s]) % p.DataWS &^ 7
	}
	if g.src.Bool(p.HotDataFrac) {
		return (g.hotBase + g.src.Uint64n(p.HotDataB)) % p.DataWS &^ 7
	}
	return g.src.Uint64n(p.DataWS) &^ 7
}

// fillTrace materializes the next trace line into the buffer.
func (g *Generator) fillTrace() {
	id := g.pickTrace()
	n := g.TraceLen(id)
	for i := 0; i < n; i++ {
		cl := g.classAt(id, i)
		op := uop.MicroOp{
			PC:    id<<6 + uint64(i)*4,
			Class: cl,
			Src1:  uop.RegNone,
			Src2:  uop.RegNone,
			Dst:   uop.RegNone,
		}
		switch cl {
		case uop.Branch:
			op.Src1 = g.srcIntReg()
			// Outcomes follow a per-trace loop pattern (taken k-1 times,
			// then not taken, with k stable per trace) plus occasional
			// data-dependent flips.  Real branch predictors can learn
			// this; the profile's MispredRate still drives the default
			// (calibrated) misprediction behaviour.
			k := uint8(2 + hash64(id^0xB10C)%14)
			cnt := g.loopState[id]
			op.Taken = cnt%k != k-1
			g.loopState[id] = cnt + 1
			if g.src.Bool(0.08) {
				op.Taken = !op.Taken
			}
			op.Mispred = g.src.Bool(g.prof.MispredRate)
		case uop.Load:
			op.Src1 = g.srcAddrReg() // address base
			op.Addr = g.memAddr()
			if g.isFPConsumerSlot(id, i) {
				op.Dst = g.allocFPDst()
			} else {
				op.Dst = g.allocIntDst(true)
			}
		case uop.Store:
			op.Src1 = g.srcAddrReg() // address base
			op.Addr = g.memAddr()
			if g.isFPConsumerSlot(id, i) {
				op.Src2 = g.srcFPReg()
			} else {
				op.Src2 = g.srcIntReg()
			}
		case uop.FPAdd, uop.FPMul, uop.FPDiv:
			op.Src1 = g.srcFPReg()
			op.Src2 = g.srcFPReg()
			op.Dst = g.allocFPDst()
		default: // integer ALU/mul/div
			if cl == uop.IntALU && hash64(id^uint64(i)*0x5bd1e995)%4 == 0 {
				// Induction update: r = r + stride, a loop-carried
				// 1-cycle chain independent of memory.
				r := numInductionRegs + g.rrInd // placeholder, fixed below
				_ = r
				ind := g.rrInd
				g.rrInd = (g.rrInd + 1) % numInductionRegs
				op.Src1 = ind
				op.Dst = ind
				break
			}
			op.Src1 = g.srcIntReg()
			if hash64(id+uint64(i)*31)&1 == 0 {
				op.Src2 = g.srcIntReg()
			}
			op.Dst = g.allocIntDst(false)
		}
		g.buf[i] = op
	}
	g.buf[n-1].TraceEnd = true
	g.bufLen = n
	g.bufPos = 0
	g.phaseLeft -= n
}

// isFPConsumerSlot decides (stably per trace slot) whether a memory op
// moves FP data; FP-heavy codes move mostly FP values.
func (g *Generator) isFPConsumerSlot(id uint64, slot int) bool {
	fpShare := g.prof.FracFPAdd + g.prof.FracFPMul + g.prof.FracFPDiv
	u := float64(hash64(id^uint64(slot)*0xABCD)>>11) / (1 << 53)
	return u < fpShare*2.2
}
