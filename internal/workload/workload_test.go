package workload

import (
	"math"
	"testing"

	"repro/internal/uop"
)

func TestSuiteComplete(t *testing.T) {
	ps := SPEC2000()
	if len(ps) != 26 {
		t.Fatalf("suite has %d benchmarks, want 26 (paper §4)", len(ps))
	}
	seen := map[string]bool{}
	seeds := map[uint64]bool{}
	for _, p := range ps {
		if seen[p.Name] {
			t.Errorf("duplicate benchmark %q", p.Name)
		}
		seen[p.Name] = true
		if seeds[p.Seed] {
			t.Errorf("duplicate seed %d (%s)", p.Seed, p.Name)
		}
		seeds[p.Seed] = true
	}
	// The paper's shortened slices keep their published fractions.
	short := map[string]float64{
		"eon": 127.0 / 200, "fma3d": 30.0 / 200, "mcf": 156.0 / 200,
		"perlbmk": 58.0 / 200, "swim": 112.0 / 200,
	}
	for _, p := range ps {
		want, isShort := short[p.Name]
		if isShort && math.Abs(p.LengthScale-want) > 1e-9 {
			t.Errorf("%s LengthScale = %v, want %v", p.Name, p.LengthScale, want)
		}
		if !isShort && p.LengthScale != 1.0 {
			t.Errorf("%s LengthScale = %v, want 1.0", p.Name, p.LengthScale)
		}
	}
}

func TestByName(t *testing.T) {
	p, ok := ByName("mcf")
	if !ok || p.Name != "mcf" {
		t.Fatal("ByName(mcf) failed")
	}
	if _, ok := ByName("nosuch"); ok {
		t.Fatal("ByName(nosuch) succeeded")
	}
	if len(Names()) != 26 {
		t.Fatal("Names() wrong length")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	p, _ := ByName("gzip")
	a := NewGenerator(p, 5000)
	b := NewGenerator(p, 5000)
	for {
		ua, oka := a.Next()
		ub, okb := b.Next()
		if oka != okb {
			t.Fatal("generators ended at different points")
		}
		if !oka {
			break
		}
		if ua != ub {
			t.Fatalf("divergence at seq %d: %+v vs %+v", ua.Seq, ua, ub)
		}
	}
}

func TestGeneratorLength(t *testing.T) {
	p, _ := ByName("gcc")
	g := NewGenerator(p, 12345)
	n := uint64(0)
	for {
		op, ok := g.Next()
		if !ok {
			break
		}
		if op.Seq != n {
			t.Fatalf("seq %d at position %d", op.Seq, n)
		}
		n++
	}
	if n != 12345 {
		t.Fatalf("emitted %d ops, want 12345", n)
	}
	if g.Total() != 12345 || g.Emitted() != 12345 {
		t.Fatalf("Total/Emitted inconsistent: %d/%d", g.Total(), g.Emitted())
	}
}

func TestLengthScaleApplied(t *testing.T) {
	p, _ := ByName("fma3d") // LengthScale 30/200
	g := NewGenerator(p, 10000)
	want := uint64(10000 * 30.0 / 200)
	if g.Total() != want {
		t.Fatalf("Total = %d, want %d", g.Total(), want)
	}
}

func TestMixMatchesProfile(t *testing.T) {
	p, _ := ByName("swim")
	g := NewGenerator(p, 200000)
	var counts [uop.NumClasses]int
	total := 0
	for {
		op, ok := g.Next()
		if !ok {
			break
		}
		counts[op.Class]++
		total++
	}
	frac := func(c uop.Class) float64 { return float64(counts[c]) / float64(total) }
	// Branches terminate traces early, which re-weights the realized mix;
	// allow a generous band but require the right character.
	if f := frac(uop.FPAdd) + frac(uop.FPMul) + frac(uop.FPDiv); math.Abs(f-0.37) > 0.12 {
		t.Errorf("swim FP fraction = %v, want ~0.37", f)
	}
	if f := frac(uop.Load); math.Abs(f-p.FracLoad) > 0.1 {
		t.Errorf("swim load fraction = %v, want ~%v", f, p.FracLoad)
	}
	if counts[uop.Copy] != 0 {
		t.Error("generator emitted internal Copy ops")
	}
}

func TestTraceStability(t *testing.T) {
	// The static content of a trace line must be a pure function of its
	// ID: same class sequence and length every time the trace executes.
	p, _ := ByName("vortex")
	g := NewGenerator(p, 300000)
	type static struct {
		classes [uop.MaxTraceOps]uop.Class
		n       int
	}
	seen := map[uint64]static{}
	var cur static
	var curID uint64
	for {
		op, ok := g.Next()
		if !ok {
			break
		}
		id := op.PC >> 6
		if cur.n == 0 {
			curID = id
		} else if id != curID {
			t.Fatalf("trace changed ID mid-line at seq %d", op.Seq)
		}
		cur.classes[cur.n] = op.Class
		cur.n++
		if op.TraceEnd {
			if prev, ok := seen[curID]; ok && prev != cur {
				t.Fatalf("trace %x changed static content: %v vs %v", curID, prev, cur)
			}
			seen[curID] = cur
			cur = static{}
		}
		if cur.n > uop.MaxTraceOps {
			t.Fatalf("trace longer than %d ops", uop.MaxTraceOps)
		}
	}
	if len(seen) < 10 {
		t.Fatalf("only %d distinct traces seen", len(seen))
	}
}

func TestTraceEndsAtBranch(t *testing.T) {
	p, _ := ByName("gcc")
	g := NewGenerator(p, 100000)
	for {
		op, ok := g.Next()
		if !ok {
			break
		}
		if op.Class == uop.Branch && !op.TraceEnd {
			t.Fatalf("branch at seq %d does not end its trace", op.Seq)
		}
	}
}

func TestAddressesWithinWorkingSet(t *testing.T) {
	p, _ := ByName("mcf")
	g := NewGenerator(p, 100000)
	for {
		op, ok := g.Next()
		if !ok {
			break
		}
		if op.Class.IsMem() {
			if op.Addr >= p.DataWS {
				t.Fatalf("address %#x outside working set %#x", op.Addr, p.DataWS)
			}
			if op.Addr&7 != 0 {
				t.Fatalf("misaligned address %#x", op.Addr)
			}
		} else if op.Addr != 0 {
			t.Fatalf("non-memory op with address %#x", op.Addr)
		}
	}
}

func TestRegisterOperandsValid(t *testing.T) {
	for _, name := range []string{"gzip", "swim", "art"} {
		p, _ := ByName(name)
		g := NewGenerator(p, 50000)
		for {
			op, ok := g.Next()
			if !ok {
				break
			}
			check := func(r int8) {
				if r != uop.RegNone && (r < 0 || r >= uop.NumLogicalRegs) {
					t.Fatalf("%s: bad register %d in %+v", name, r, op)
				}
			}
			check(op.Src1)
			check(op.Src2)
			check(op.Dst)
			if op.Class.IsFP() && op.HasDst() && !uop.IsFPReg(op.Dst) {
				t.Fatalf("%s: FP op writes integer register: %+v", name, op)
			}
			if op.Class == uop.Branch && op.HasDst() {
				t.Fatalf("%s: branch with destination: %+v", name, op)
			}
			if op.Class == uop.Store && op.HasDst() {
				t.Fatalf("%s: store with destination: %+v", name, op)
			}
		}
	}
}

func TestMispredictionRateReasonable(t *testing.T) {
	p, _ := ByName("vpr") // MispredRate 0.06
	g := NewGenerator(p, 300000)
	branches, mispred := 0, 0
	for {
		op, ok := g.Next()
		if !ok {
			break
		}
		if op.Class == uop.Branch {
			branches++
			if op.Mispred {
				mispred++
			}
		}
	}
	if branches == 0 {
		t.Fatal("no branches generated")
	}
	rate := float64(mispred) / float64(branches)
	if math.Abs(rate-p.MispredRate) > 0.02 {
		t.Errorf("mispred rate %v, want ~%v", rate, p.MispredRate)
	}
}

func TestHotPhaseLocality(t *testing.T) {
	// The hot-phase working set must be much smaller than the cold one:
	// count distinct traces in windows and require strong reuse overall.
	p, _ := ByName("gzip")
	g := NewGenerator(p, 200000)
	distinct := map[uint64]bool{}
	n := 0
	for {
		op, ok := g.Next()
		if !ok {
			break
		}
		if op.TraceEnd {
			distinct[op.PC>>6] = true
			n++
		}
	}
	if n == 0 {
		t.Fatal("no traces")
	}
	reuse := float64(n) / float64(len(distinct))
	if reuse < 20 {
		t.Errorf("trace reuse factor %.1f too low for a loopy benchmark", reuse)
	}
}
