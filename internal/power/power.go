// Package power implements the paper's power model (§2.1): per-block
// activity counters multiplied by energy-per-operation constants for
// dynamic power, plus a clock/idle component proportional to block area,
// plus a leakage component that is 30% of the block's nominal dynamic
// power at the 45°C inside-box temperature and grows exponentially with
// temperature.
//
// Absolute energy values are calibration constants (the authors used
// internal Intel data and Cacti; we tune to reproduce the paper's
// relative picture: frontend ≈ 30% of dynamic power, the Figure 1
// temperature landscape, and the −11% distributed-ROB power).  All the
// paper's results are ratios, which is what the calibration targets.
package power

import (
	"math"

	"repro/internal/core"
	"repro/internal/floorplan"
)

// Constants are the energy-per-event values (nanojoules) and the shared
// clock/leakage parameters.
type Constants struct {
	// Frontend energies.
	TCAccess    float64 // per trace-line read or fill, per bank
	ITLBAccess  float64
	BPAccess    float64
	DecodeOp    float64
	SteerOp     float64 // availability table / freelist event
	RATAccess   float64 // per read or write, centralized
	ROBAccess   float64 // per alloc/complete/commit, centralized
	ROBWalkRead float64 // per R/L field read
	// DistEPAFactor scales RAT/ROB energy per access in the distributed
	// organization (§4.1: "each access consumes less than half the
	// energy").
	DistEPAFactor float64

	// Backend energies.
	RFRead    float64
	RFWrite   float64
	IssueOp   float64 // scheduler selection + entry insert, per issue
	QueueOp   float64 // scheduler wakeup scan, per scanned entry
	IntFUOp   float64
	FPFUOp    float64
	AgenOp    float64
	MOBOp     float64
	DL1Access float64
	DTLBOp    float64
	UL2Access float64

	// Clock/idle dynamic power densities (W/mm²), charged to powered-on
	// blocks regardless of activity.
	ClockLogic float64 // ROB, RAT, DECO, BP, RF, schedulers, FUs, MOB
	ClockSRAM  float64 // TC banks, DL1, DTLB, ITLB
	ClockUL2   float64

	// Leakage: ratio of nominal dynamic power at 45°C, and the doubling
	// temperature delta of the exponential.
	LeakRatioAt45 float64
	LeakDoubleDeg float64

	// ClockGHz converts per-interval event counts into rates.
	ClockGHz float64
}

// DefaultConstants returns the calibrated energy table.
func DefaultConstants() Constants {
	return Constants{
		TCAccess:    10.5,
		ITLBAccess:  0.8,
		BPAccess:    1.6,
		DecodeOp:    0.45,
		SteerOp:     0.015,
		RATAccess:   0.50,
		ROBAccess:   0.55,
		ROBWalkRead: 0.025,

		DistEPAFactor: 0.48,

		RFRead:    0.45,
		RFWrite:   0.55,
		IssueOp:   0.80,
		QueueOp:   0.008,
		IntFUOp:   0.45,
		FPFUOp:    0.80,
		AgenOp:    0.28,
		MOBOp:     0.35,
		DL1Access: 0.80,
		DTLBOp:    0.35,
		UL2Access: 2.0,

		ClockLogic: 0.25,
		ClockSRAM:  0.08,
		ClockUL2:   0.025,

		LeakRatioAt45: 0.30,
		LeakDoubleDeg: 45.0,

		ClockGHz: 10.0,
	}
}

// Model converts interval activity deltas into per-block power vectors
// aligned with a floorplan.
type Model struct {
	cfg     core.Config
	fp      *floorplan.Floorplan
	k       Constants
	nominal []float64 // per-block nominal dynamic power for leakage
}

// New builds a power model for the configuration and floorplan.
func New(cfg core.Config, fp *floorplan.Floorplan, k Constants) *Model {
	return &Model{cfg: cfg, fp: fp, k: k, nominal: make([]float64, len(fp.Blocks))}
}

// Constants returns the model's energy table.
func (m *Model) Constants() Constants { return m.k }

// SetNominal installs the per-block nominal dynamic power used as the
// leakage base (the paper obtains it from a 50M-instruction profiling
// run).
func (m *Model) SetNominal(dyn []float64) {
	copy(m.nominal, dyn)
}

// nj converts an event count at energy nanojoules into watts over the
// interval.
func nj(count uint64, energyNJ float64, seconds float64) float64 {
	return float64(count) * energyNJ * 1e-9 / seconds
}

// Dynamic computes the per-block dynamic power (W) for one interval.
// delta is the activity difference over the interval; tcEnabled flags
// which trace-cache banks were powered (Vdd-gated banks get no clock
// power and no leakage).  The returned slice is indexed like fp.Blocks.
func (m *Model) Dynamic(delta core.Activity, tcEnabled []bool) []float64 {
	k := &m.k
	seconds := float64(delta.Cycles) / (k.ClockGHz * 1e9)
	if seconds <= 0 {
		seconds = 1e-12
	}
	out := make([]float64, len(m.fp.Blocks))
	set := func(name string, w float64) {
		if i := m.fp.Index(name); i >= 0 {
			out[i] += w
		}
	}

	// Trace-cache banks: per-bank access energy plus SRAM clock when
	// powered.  (§4: the per-access energy is the proportional part of
	// the total cache energy, so no bank is artificially favoured.)
	for b, acc := range delta.TCBank {
		name := floorplan.TCBank(b)
		w := nj(acc, k.TCAccess, seconds)
		if b < len(tcEnabled) && !tcEnabled[b] {
			w = 0 // gated: no clock either; activity should be zero anyway
		} else if i := m.fp.Index(name); i >= 0 {
			w += k.ClockSRAM * m.fp.Blocks[i].Area()
		}
		set(name, w)
	}

	set(floorplan.ITLB, nj(delta.ITLB, k.ITLBAccess, seconds)+m.clock(floorplan.ITLB, k.ClockSRAM))
	set(floorplan.BP, nj(delta.BP, k.BPAccess, seconds)+m.clock(floorplan.BP, k.ClockLogic))
	set(floorplan.DECO,
		nj(delta.Decode, k.DecodeOp, seconds)+
			nj(delta.SteerOps, k.SteerOp, seconds)+
			m.clock(floorplan.DECO, k.ClockLogic))

	// RAT and ROB: centralized or per-partition.
	epaScale := 1.0
	if m.cfg.Distributed() {
		epaScale = k.DistEPAFactor
	}
	for part := range delta.RATReads {
		name := floorplan.RAT
		if m.cfg.Distributed() {
			name = floorplan.RATPart(part)
		}
		acc := delta.RATReads[part] + delta.RATWrites[part]
		set(name, nj(acc, k.RATAccess*epaScale, seconds)+m.clock(name, k.ClockLogic))
	}
	for part := range delta.ROBAllocs {
		name := floorplan.ROB
		if m.cfg.Distributed() {
			name = floorplan.ROBPart(part)
		}
		acc := delta.ROBAllocs[part] + delta.ROBCompletes[part] + delta.ROBCommits[part]
		w := nj(acc, k.ROBAccess*epaScale, seconds) +
			nj(delta.ROBWalks[part], k.ROBWalkRead, seconds) +
			m.clock(name, k.ClockLogic)
		set(name, w)
	}

	set(floorplan.UL2, nj(delta.UL2, k.UL2Access, seconds)+m.clock(floorplan.UL2, k.ClockUL2))

	for cl, ca := range delta.Cluster {
		cb := func(unit string) string { return floorplan.ClusterBlock(cl, unit) }
		set(cb("IRF"), nj(ca.IRFReads, k.RFRead, seconds)+nj(ca.IRFWrites, k.RFWrite, seconds)+
			m.clock(cb("IRF"), k.ClockLogic))
		set(cb("FPRF"), nj(ca.FPRFReads, k.RFRead, seconds)+nj(ca.FPRFWrites, k.RFWrite, seconds)+
			m.clock(cb("FPRF"), k.ClockLogic))
		// Schedulers: IS gets the integer queue, FPS the FP queue, CS the
		// copy queue; the memory queue's scheduling energy is charged to
		// the MOB block along with disambiguation activity.
		sched := func(q int) float64 {
			return nj(ca.Queue[q], k.QueueOp, seconds) + nj(ca.Issues[q], k.IssueOp, seconds)
		}
		set(cb("IS"), sched(0)+m.clock(cb("IS"), k.ClockLogic))
		set(cb("FPS"), sched(1)+m.clock(cb("FPS"), k.ClockLogic))
		set(cb("CS"), sched(2)+m.clock(cb("CS"), k.ClockLogic))
		set(cb("MOB"), sched(3)+nj(ca.MOB, k.MOBOp, seconds)+
			m.clock(cb("MOB"), k.ClockLogic))
		set(cb("IFU"), nj(ca.IntFUOps, k.IntFUOp, seconds)+nj(ca.AgenOps, k.AgenOp, seconds)+
			m.clock(cb("IFU"), k.ClockLogic))
		set(cb("FPFU"), nj(ca.FPFUOps, k.FPFUOp, seconds)+m.clock(cb("FPFU"), k.ClockLogic))
		set(cb("DL1"), nj(ca.DL1, k.DL1Access, seconds)+m.clock(cb("DL1"), k.ClockSRAM))
		set(cb("DTLB"), nj(ca.DTLB, k.DTLBOp, seconds)+m.clock(cb("DTLB"), k.ClockSRAM))
	}
	return out
}

func (m *Model) clock(name string, density float64) float64 {
	i := m.fp.Index(name)
	if i < 0 {
		return 0
	}
	return density * m.fp.Blocks[i].Area()
}

// Leakage computes per-block leakage power (W) at the given block
// temperatures: 30% of the nominal dynamic power at 45°C, doubling every
// LeakDoubleDeg °C (the exponential dependence of §2.1).  Gated
// trace-cache banks leak nothing (Vdd gating cuts the supply).
func (m *Model) Leakage(temps []float64, tcEnabled []bool) []float64 {
	out := make([]float64, len(m.fp.Blocks))
	for i, b := range m.fp.Blocks {
		if floorplan.IsTraceCache(b.Name) {
			bank := int(b.Name[len(b.Name)-1] - '0')
			if bank < len(tcEnabled) && !tcEnabled[bank] {
				continue
			}
		}
		t := temps[i]
		if t > 160 {
			// Numerical guard: beyond any physical die temperature the
			// exponential would run away; the paper's emergency systems
			// would long have fired (it reports no temperatures past the
			// 381 K limit).
			t = 160
		}
		out[i] = m.k.LeakRatioAt45 * m.nominal[i] * math.Exp2((t-45)/m.k.LeakDoubleDeg)
	}
	return out
}

// Total returns the sum of a power vector.
func Total(p []float64) float64 {
	s := 0.0
	for _, v := range p {
		s += v
	}
	return s
}

// Add returns the element-wise sum of two power vectors.
func Add(a, b []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}
