// Package power implements the paper's power model (§2.1): per-block
// activity counters multiplied by energy-per-operation constants for
// dynamic power, plus a clock/idle component proportional to block area,
// plus a leakage component that is 30% of the block's nominal dynamic
// power at the 45°C inside-box temperature and grows exponentially with
// temperature.
//
// Absolute energy values are calibration constants (the authors used
// internal Intel data and Cacti; we tune to reproduce the paper's
// relative picture: frontend ≈ 30% of dynamic power, the Figure 1
// temperature landscape, and the −11% distributed-ROB power).  All the
// paper's results are ratios, which is what the calibration targets.
//
// The model resolves every floorplan block once at construction into
// integer index tables with precomputed clock/idle powers (the same
// precompute-the-geometry-once idea the fast thermal-computation
// literature applies to temperature kernels), so the per-interval entry
// points DynamicInto and LeakageInto are pure array walks over
// caller-provided scratch: no string lookups and no allocation on the
// simulation hot path.
package power

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/floorplan"
)

// Constants are the energy-per-event values (nanojoules) and the shared
// clock/leakage parameters.
type Constants struct {
	// Frontend energies.
	TCAccess    float64 // per trace-line read or fill, per bank
	ITLBAccess  float64
	BPAccess    float64
	DecodeOp    float64
	SteerOp     float64 // availability table / freelist event
	RATAccess   float64 // per read or write, centralized
	ROBAccess   float64 // per alloc/complete/commit, centralized
	ROBWalkRead float64 // per R/L field read
	// DistEPAFactor scales RAT/ROB energy per access in the distributed
	// organization (§4.1: "each access consumes less than half the
	// energy").
	DistEPAFactor float64

	// Backend energies.
	RFRead    float64
	RFWrite   float64
	IssueOp   float64 // scheduler selection + entry insert, per issue
	QueueOp   float64 // scheduler wakeup scan, per scanned entry
	IntFUOp   float64
	FPFUOp    float64
	AgenOp    float64
	MOBOp     float64
	DL1Access float64
	DTLBOp    float64
	UL2Access float64

	// Clock/idle dynamic power densities (W/mm²), charged to powered-on
	// blocks regardless of activity.
	ClockLogic float64 // ROB, RAT, DECO, BP, RF, schedulers, FUs, MOB
	ClockSRAM  float64 // TC banks, DL1, DTLB, ITLB
	ClockUL2   float64

	// Leakage: ratio of nominal dynamic power at 45°C, and the doubling
	// temperature delta of the exponential.
	LeakRatioAt45 float64
	LeakDoubleDeg float64

	// ClockGHz converts per-interval event counts into rates.
	ClockGHz float64
}

// DefaultConstants returns the calibrated energy table.
func DefaultConstants() Constants {
	return Constants{
		TCAccess:    10.5,
		ITLBAccess:  0.8,
		BPAccess:    1.6,
		DecodeOp:    0.45,
		SteerOp:     0.015,
		RATAccess:   0.50,
		ROBAccess:   0.55,
		ROBWalkRead: 0.025,

		DistEPAFactor: 0.48,

		RFRead:    0.45,
		RFWrite:   0.55,
		IssueOp:   0.80,
		QueueOp:   0.008,
		IntFUOp:   0.45,
		FPFUOp:    0.80,
		AgenOp:    0.28,
		MOBOp:     0.35,
		DL1Access: 0.80,
		DTLBOp:    0.35,
		UL2Access: 2.0,

		ClockLogic: 0.25,
		ClockSRAM:  0.08,
		ClockUL2:   0.025,

		LeakRatioAt45: 0.30,
		LeakDoubleDeg: 45.0,

		ClockGHz: 10.0,
	}
}

// blockTerm is one resolved floorplan block: its index (-1 when the block
// is absent from the floorplan) and its precomputed clock/idle power.
type blockTerm struct {
	idx   int
	clock float64
}

// clusterTerms are the resolved sub-blocks of one backend cluster.
type clusterTerms struct {
	irf, fprf, is, fps, cs, mob, ifu, fpfu, dl1, dtlb blockTerm
}

// Model converts interval activity deltas into per-block power vectors
// aligned with a floorplan.
type Model struct {
	cfg     core.Config
	fp      *floorplan.Floorplan
	k       Constants
	nominal []float64 // per-block nominal dynamic power for leakage

	// Index tables resolved at construction so the per-interval entry
	// points never consult the floorplan's string-keyed map.
	tc                  []blockTerm // per trace-cache bank
	itlb, bp, deco, ul2 blockTerm
	rat, rob            []blockTerm // per frontend partition
	cl                  []clusterTerms
	ratEnergy           float64 // RATAccess with DistEPAFactor folded in
	robEnergy           float64
	leakBank            []int // per block: trace-cache bank number, or -1
}

// New builds a power model for the configuration and floorplan.
func New(cfg core.Config, fp *floorplan.Floorplan, k Constants) *Model {
	m := &Model{cfg: cfg, fp: fp, k: k, nominal: make([]float64, len(fp.Blocks))}

	m.tc = make([]blockTerm, cfg.TC.Banks)
	for b := range m.tc {
		m.tc[b] = m.resolve(floorplan.TCBank(b), k.ClockSRAM)
	}
	m.itlb = m.resolve(floorplan.ITLB, k.ClockSRAM)
	m.bp = m.resolve(floorplan.BP, k.ClockLogic)
	m.deco = m.resolve(floorplan.DECO, k.ClockLogic)
	m.ul2 = m.resolve(floorplan.UL2, k.ClockUL2)

	epaScale := 1.0
	if cfg.Distributed() {
		epaScale = k.DistEPAFactor
	}
	m.ratEnergy = k.RATAccess * epaScale
	m.robEnergy = k.ROBAccess * epaScale
	m.rat = make([]blockTerm, cfg.Frontends)
	m.rob = make([]blockTerm, cfg.Frontends)
	for p := range m.rat {
		ratName, robName := floorplan.RAT, floorplan.ROB
		if cfg.Distributed() {
			ratName, robName = floorplan.RATPart(p), floorplan.ROBPart(p)
		}
		m.rat[p] = m.resolve(ratName, k.ClockLogic)
		m.rob[p] = m.resolve(robName, k.ClockLogic)
	}

	m.cl = make([]clusterTerms, cfg.Clusters)
	for c := range m.cl {
		m.cl[c] = m.resolveCluster(c)
	}

	m.leakBank = make([]int, len(fp.Blocks))
	for i := range m.leakBank {
		m.leakBank[i] = -1
	}
	for b, t := range m.tc {
		if t.idx >= 0 {
			m.leakBank[t.idx] = b
		}
	}
	// Trace-cache blocks beyond the configured bank count (only possible
	// with a floorplan wider than the configuration): parse the full bank
	// suffix rather than a single digit.
	for i, b := range fp.Blocks {
		if m.leakBank[i] < 0 && floorplan.IsTraceCache(b.Name) {
			if n, err := strconv.Atoi(strings.TrimPrefix(b.Name, "TC-")); err == nil {
				m.leakBank[i] = n
			}
		}
	}
	return m
}

// resolve looks up a block and precomputes its clock/idle power.
func (m *Model) resolve(name string, density float64) blockTerm {
	i := m.fp.Index(name)
	if i < 0 {
		return blockTerm{idx: -1}
	}
	return blockTerm{idx: i, clock: density * m.fp.Blocks[i].Area()}
}

// resolveCluster resolves the sub-blocks of cluster c.
func (m *Model) resolveCluster(c int) clusterTerms {
	k := &m.k
	cb := func(unit string, density float64) blockTerm {
		return m.resolve(floorplan.ClusterBlock(c, unit), density)
	}
	return clusterTerms{
		irf:  cb("IRF", k.ClockLogic),
		fprf: cb("FPRF", k.ClockLogic),
		is:   cb("IS", k.ClockLogic),
		fps:  cb("FPS", k.ClockLogic),
		cs:   cb("CS", k.ClockLogic),
		mob:  cb("MOB", k.ClockLogic),
		ifu:  cb("IFU", k.ClockLogic),
		fpfu: cb("FPFU", k.ClockLogic),
		dl1:  cb("DL1", k.ClockSRAM),
		dtlb: cb("DTLB", k.ClockSRAM),
	}
}

// Constants returns the model's energy table.
func (m *Model) Constants() Constants { return m.k }

// Blocks returns the number of floorplan blocks a power vector spans.
func (m *Model) Blocks() int { return len(m.fp.Blocks) }

// SetNominal installs the per-block nominal dynamic power used as the
// leakage base (the paper obtains it from a 50M-instruction profiling
// run).
func (m *Model) SetNominal(dyn []float64) {
	copy(m.nominal, dyn)
}

// nj converts an event count at energy nanojoules into watts over the
// interval.
func nj(count uint64, energyNJ float64, seconds float64) float64 {
	return float64(count) * energyNJ * 1e-9 / seconds
}

// add accumulates w into the block's slot when the block exists.
func add(out []float64, t blockTerm, w float64) {
	if t.idx >= 0 {
		out[t.idx] += w
	}
}

// Dynamic computes the per-block dynamic power (W) for one interval.
// delta is the activity difference over the interval; tcEnabled flags
// which trace-cache banks were powered (Vdd-gated banks get no clock
// power and no leakage).  The returned slice is indexed like fp.Blocks.
//
// Dynamic allocates its result; the hot path uses DynamicInto.
func (m *Model) Dynamic(delta core.Activity, tcEnabled []bool) []float64 {
	return m.DynamicInto(&delta, tcEnabled, make([]float64, len(m.fp.Blocks)))
}

// DynamicInto is Dynamic writing into caller-provided scratch: out is
// zeroed, filled, and returned.  len(out) must equal the floorplan's
// block count.  DynamicInto performs no allocation and no string lookups.
func (m *Model) DynamicInto(delta *core.Activity, tcEnabled []bool, out []float64) []float64 {
	if len(out) != len(m.fp.Blocks) {
		panic(fmt.Sprintf("power: DynamicInto scratch has %d blocks, want %d", len(out), len(m.fp.Blocks)))
	}
	k := &m.k
	seconds := float64(delta.Cycles) / (k.ClockGHz * 1e9)
	if seconds <= 0 {
		seconds = 1e-12
	}
	for i := range out {
		out[i] = 0
	}

	// Trace-cache banks: per-bank access energy plus SRAM clock when
	// powered.  (§4: the per-access energy is the proportional part of
	// the total cache energy, so no bank is artificially favoured.)
	for b, acc := range delta.TCBank {
		t := m.tcTerm(b)
		w := nj(acc, k.TCAccess, seconds)
		if b < len(tcEnabled) && !tcEnabled[b] {
			w = 0 // gated: no clock either; activity should be zero anyway
		} else if t.idx >= 0 {
			w += t.clock
		}
		add(out, t, w)
	}

	add(out, m.itlb, nj(delta.ITLB, k.ITLBAccess, seconds)+m.itlb.clock)
	add(out, m.bp, nj(delta.BP, k.BPAccess, seconds)+m.bp.clock)
	add(out, m.deco,
		nj(delta.Decode, k.DecodeOp, seconds)+
			nj(delta.SteerOps, k.SteerOp, seconds)+
			m.deco.clock)

	// RAT and ROB: centralized or per-partition (the distributed
	// energy-per-access factor is folded into ratEnergy/robEnergy).
	for part := range delta.RATReads {
		t := m.partTerm(m.rat, part, ratPartName)
		acc := delta.RATReads[part] + delta.RATWrites[part]
		add(out, t, nj(acc, m.ratEnergy, seconds)+t.clock)
	}
	for part := range delta.ROBAllocs {
		t := m.partTerm(m.rob, part, robPartName)
		acc := delta.ROBAllocs[part] + delta.ROBCompletes[part] + delta.ROBCommits[part]
		w := nj(acc, m.robEnergy, seconds) +
			nj(delta.ROBWalks[part], k.ROBWalkRead, seconds) +
			t.clock
		add(out, t, w)
	}

	add(out, m.ul2, nj(delta.UL2, k.UL2Access, seconds)+m.ul2.clock)

	for cl := range delta.Cluster {
		ca := &delta.Cluster[cl]
		c := m.clusterTerm(cl)
		add(out, c.irf, nj(ca.IRFReads, k.RFRead, seconds)+nj(ca.IRFWrites, k.RFWrite, seconds)+
			c.irf.clock)
		add(out, c.fprf, nj(ca.FPRFReads, k.RFRead, seconds)+nj(ca.FPRFWrites, k.RFWrite, seconds)+
			c.fprf.clock)
		// Schedulers: IS gets the integer queue, FPS the FP queue, CS the
		// copy queue; the memory queue's scheduling energy is charged to
		// the MOB block along with disambiguation activity.
		sched := func(q int) float64 {
			return nj(ca.Queue[q], k.QueueOp, seconds) + nj(ca.Issues[q], k.IssueOp, seconds)
		}
		add(out, c.is, sched(0)+c.is.clock)
		add(out, c.fps, sched(1)+c.fps.clock)
		add(out, c.cs, sched(2)+c.cs.clock)
		add(out, c.mob, sched(3)+nj(ca.MOB, k.MOBOp, seconds)+c.mob.clock)
		add(out, c.ifu, nj(ca.IntFUOps, k.IntFUOp, seconds)+nj(ca.AgenOps, k.AgenOp, seconds)+
			c.ifu.clock)
		add(out, c.fpfu, nj(ca.FPFUOps, k.FPFUOp, seconds)+c.fpfu.clock)
		add(out, c.dl1, nj(ca.DL1, k.DL1Access, seconds)+c.dl1.clock)
		add(out, c.dtlb, nj(ca.DTLB, k.DTLBOp, seconds)+c.dtlb.clock)
	}
	return out
}

func ratPartName(p int) string { return floorplan.RATPart(p) }
func robPartName(p int) string { return floorplan.ROBPart(p) }

// tcTerm returns the resolved term for trace-cache bank b, falling back
// to a live lookup for banks beyond the configured count (only possible
// with a hand-built Activity wider than the configuration).
func (m *Model) tcTerm(b int) blockTerm {
	if b < len(m.tc) {
		return m.tc[b]
	}
	return m.resolve(floorplan.TCBank(b), m.k.ClockSRAM)
}

// partTerm returns the resolved RAT/ROB term for a frontend partition,
// with the same out-of-range fallback as tcTerm.
func (m *Model) partTerm(table []blockTerm, p int, name func(int) string) blockTerm {
	if p < len(table) {
		return table[p]
	}
	if !m.cfg.Distributed() && len(table) > 0 {
		return table[0] // centralized: every partition maps to the one block
	}
	return m.resolve(name(p), m.k.ClockLogic)
}

// clusterTerm returns the resolved terms of cluster cl, with the same
// out-of-range fallback as tcTerm.
func (m *Model) clusterTerm(cl int) *clusterTerms {
	if cl < len(m.cl) {
		return &m.cl[cl]
	}
	t := m.resolveCluster(cl)
	return &t
}

// Leakage computes per-block leakage power (W) at the given block
// temperatures: 30% of the nominal dynamic power at 45°C, doubling every
// LeakDoubleDeg °C (the exponential dependence of §2.1).  Gated
// trace-cache banks leak nothing (Vdd gating cuts the supply).
//
// Leakage allocates its result; the hot path uses LeakageInto.
func (m *Model) Leakage(temps []float64, tcEnabled []bool) []float64 {
	return m.LeakageInto(temps, tcEnabled, make([]float64, len(m.fp.Blocks)))
}

// LeakageInto is Leakage writing into caller-provided scratch: out is
// zeroed, filled, and returned.  len(out) must equal the floorplan's
// block count.
func (m *Model) LeakageInto(temps []float64, tcEnabled []bool, out []float64) []float64 {
	if len(out) != len(m.fp.Blocks) {
		panic(fmt.Sprintf("power: LeakageInto scratch has %d blocks, want %d", len(out), len(m.fp.Blocks)))
	}
	for i := range out {
		out[i] = 0
		if bank := m.leakBank[i]; bank >= 0 && bank < len(tcEnabled) && !tcEnabled[bank] {
			continue
		}
		t := temps[i]
		if t > 160 {
			// Numerical guard: beyond any physical die temperature the
			// exponential would run away; the paper's emergency systems
			// would long have fired (it reports no temperatures past the
			// 381 K limit).
			t = 160
		}
		out[i] = m.k.LeakRatioAt45 * m.nominal[i] * math.Exp2((t-45)/m.k.LeakDoubleDeg)
	}
	return out
}

// Total returns the sum of a power vector.
func Total(p []float64) float64 {
	s := 0.0
	for _, v := range p {
		s += v
	}
	return s
}

// Add returns the element-wise sum of two power vectors.
func Add(a, b []float64) []float64 {
	return AddInto(make([]float64, len(a)), a, b)
}

// AddInto writes the element-wise sum of a and b into dst and returns it.
func AddInto(dst, a, b []float64) []float64 {
	for i := range a {
		dst[i] = a[i] + b[i]
	}
	return dst
}
