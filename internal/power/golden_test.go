package power

import (
	"flag"
	"path/filepath"
	"testing"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/floorplan"
	"repro/internal/goldentest"
)

var updateGolden = flag.Bool("update", false, "rewrite golden fixtures")

// syntheticActivity fills every counter with a deterministic non-trivial
// value so each energy term of the model is exercised.
func syntheticActivity(cfg core.Config) core.Activity {
	a := core.Activity{
		Cycles:    100_000,
		Committed: 180_000,
		ITLB:      12_345,
		BP:        23_456,
		Decode:    170_001,
		SteerOps:  88_123,
		UL2:       4_321,
	}
	a.TCBank = make([]uint64, cfg.TC.Banks)
	for b := range a.TCBank {
		a.TCBank[b] = uint64(9_000 + 1_111*b)
	}
	f := cfg.Frontends
	a.RATReads = make([]uint64, f)
	a.RATWrites = make([]uint64, f)
	a.ROBAllocs = make([]uint64, f)
	a.ROBCompletes = make([]uint64, f)
	a.ROBCommits = make([]uint64, f)
	a.ROBWalks = make([]uint64, f)
	for p := 0; p < f; p++ {
		a.RATReads[p] = uint64(40_000 + 700*p)
		a.RATWrites[p] = uint64(20_000 + 300*p)
		a.ROBAllocs[p] = uint64(30_000 + 500*p)
		a.ROBCompletes[p] = uint64(29_000 + 400*p)
		a.ROBCommits[p] = uint64(28_000 + 350*p)
		a.ROBWalks[p] = uint64(6_000 + 90*p)
	}
	a.Cluster = make([]core.ClusterActivity, cfg.Clusters)
	for cl := range a.Cluster {
		ca := &a.Cluster[cl]
		ca.IRFReads = uint64(15_000 + 101*cl)
		ca.IRFWrites = uint64(8_000 + 53*cl)
		ca.FPRFReads = uint64(5_000 + 41*cl)
		ca.FPRFWrites = uint64(2_500 + 29*cl)
		for q := 0; q < int(backend.NumQueues); q++ {
			ca.Queue[q] = uint64(60_000 + 997*cl + 131*q)
			ca.Issues[q] = uint64(7_000 + 61*cl + 17*q)
		}
		ca.IntFUOps = uint64(12_000 + 211*cl)
		ca.FPFUOps = uint64(3_000 + 83*cl)
		ca.AgenOps = uint64(9_000 + 127*cl)
		ca.DL1 = uint64(10_000 + 149*cl)
		ca.DTLB = uint64(9_500 + 139*cl)
		ca.MOB = uint64(11_000 + 157*cl)
	}
	return a
}

func goldenConfigs() map[string]core.Config {
	return map[string]core.Config{
		"baseline":    core.DefaultConfig(),
		"distributed": core.DefaultConfig().WithDistributedFrontend(2).WithBankHopping().WithBiasedMapping(),
	}
}

// TestGoldenDynamicLeakage pins the exact bits of Dynamic and Leakage for
// synthetic activity, before and after the scratch-buffer rewrite.
func TestGoldenDynamicLeakage(t *testing.T) {
	for name, cfg := range goldenConfigs() {
		t.Run(name, func(t *testing.T) {
			fp := floorplan.New(floorplan.Config{
				TCBanks:     cfg.TC.Banks,
				Distributed: cfg.Distributed(),
				Partitions:  cfg.Frontends,
				Clusters:    cfg.Clusters,
			})
			m := New(cfg, fp, DefaultConstants())
			act := syntheticActivity(cfg)
			enabled := make([]bool, cfg.TC.Banks)
			for b := range enabled {
				enabled[b] = true
			}
			if cfg.TC.Banks > 2 {
				enabled[cfg.TC.Banks-1] = false // one gated bank, as under hopping
			}
			dyn := m.Dynamic(act, enabled)
			m.SetNominal(dyn)
			temps := make([]float64, len(fp.Blocks))
			for i := range temps {
				temps[i] = 45 + 2.5*float64(i%13) // spans the leakage exponential
			}
			leak := m.Leakage(temps, enabled)
			sum := Add(dyn, leak)
			goldentest.Check(t, filepath.Join("testdata", "golden_"+name+".json"), map[string][]string{
				"dynamic": goldentest.Vec(dyn),
				"leakage": goldentest.Vec(leak),
				"total":   goldentest.Vec(sum),
			}, *updateGolden)
		})
	}
}
