package power

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/floorplan"
)

func fixture(distributed bool) (*Model, core.Config, *floorplan.Floorplan) {
	cfg := core.DefaultConfig()
	if distributed {
		cfg = cfg.WithDistributedFrontend(2)
	}
	fp := floorplan.New(floorplan.Config{
		TCBanks: cfg.TC.Banks, Distributed: cfg.Distributed(),
		Partitions: cfg.Frontends, Clusters: cfg.Clusters,
	})
	return New(cfg, fp, DefaultConstants()), cfg, fp
}

// activity builds a synthetic one-interval delta with plausible rates.
func activity(cfg core.Config, cycles uint64) core.Activity {
	a := core.Activity{Cycles: cycles, Committed: cycles / 3}
	a.TCBank = make([]uint64, cfg.TC.Banks)
	for b := range a.TCBank {
		a.TCBank[b] = cycles / 20
	}
	a.ITLB = cycles / 20
	a.BP = cycles / 12
	a.Decode = cycles / 3
	a.SteerOps = cycles
	f := cfg.Frontends
	a.RATReads = make([]uint64, f)
	a.RATWrites = make([]uint64, f)
	a.ROBAllocs = make([]uint64, f)
	a.ROBCompletes = make([]uint64, f)
	a.ROBCommits = make([]uint64, f)
	a.ROBWalks = make([]uint64, f)
	for p := 0; p < f; p++ {
		a.RATReads[p] = cycles / 4 / uint64(f)
		a.RATWrites[p] = cycles / 5 / uint64(f)
		a.ROBAllocs[p] = cycles / 3 / uint64(f)
		a.ROBCompletes[p] = cycles / 3 / uint64(f)
		a.ROBCommits[p] = cycles / 3 / uint64(f)
		a.ROBWalks[p] = cycles / uint64(f)
	}
	a.Cluster = make([]core.ClusterActivity, cfg.Clusters)
	for c := range a.Cluster {
		ca := &a.Cluster[c]
		ca.IRFReads = cycles / 12
		ca.IRFWrites = cycles / 20
		ca.FPRFReads = cycles / 40
		ca.FPRFWrites = cycles / 60
		for k := range ca.Queue {
			ca.Queue[k] = cycles * 2
			ca.Issues[k] = cycles / 25
		}
		ca.IntFUOps = cycles / 25
		ca.FPFUOps = cycles / 50
		ca.AgenOps = cycles / 30
		ca.DL1 = cycles / 25
		ca.DTLB = cycles / 30
		ca.MOB = cycles / 10
	}
	a.UL2 = cycles / 100
	return a
}

func allEnabled(n int) []bool {
	e := make([]bool, n)
	for i := range e {
		e[i] = true
	}
	return e
}

func TestDynamicPositiveEverywhere(t *testing.T) {
	m, cfg, fp := fixture(false)
	p := m.Dynamic(activity(cfg, 100_000), allEnabled(cfg.TC.Banks))
	if len(p) != len(fp.Blocks) {
		t.Fatalf("power vector length %d, want %d", len(p), len(fp.Blocks))
	}
	for i, w := range p {
		if w <= 0 {
			t.Errorf("block %s has non-positive power %v", fp.Blocks[i].Name, w)
		}
	}
}

func TestTotalPowerPlausible(t *testing.T) {
	// The calibration targets a 10 GHz design in the 50-120 W range.
	m, cfg, _ := fixture(false)
	p := m.Dynamic(activity(cfg, 100_000), allEnabled(cfg.TC.Banks))
	total := Total(p)
	if total < 20 || total > 200 {
		t.Fatalf("total dynamic power %v W implausible", total)
	}
}

func TestFrontendPowerShare(t *testing.T) {
	// Paper §1: frontend ≈ 30% of the dynamic power for this design.
	m, cfg, fp := fixture(false)
	p := m.Dynamic(activity(cfg, 100_000), allEnabled(cfg.TC.Banks))
	fe := 0.0
	for i, b := range fp.Blocks {
		if floorplan.IsFrontend(b.Name) {
			fe += p[i]
		}
	}
	share := fe / Total(p)
	// The paper reports ~30% for its design; our calibration lands the
	// temperature landscape at a somewhat higher share (see
	// EXPERIMENTS.md, Deviations).
	if share < 0.18 || share > 0.60 {
		t.Errorf("frontend power share %.2f outside the plausible band", share)
	}
}

func TestGatedBankGetsNoPower(t *testing.T) {
	m, cfg, fp := fixture(false)
	enabled := allEnabled(cfg.TC.Banks)
	enabled[1] = false
	a := activity(cfg, 100_000)
	a.TCBank[1] = 0 // gated banks see no accesses
	p := m.Dynamic(a, enabled)
	if w := p[fp.Index(floorplan.TCBank(1))]; w != 0 {
		t.Fatalf("gated bank draws %v W dynamic", w)
	}
	// And no leakage either (Vdd gating).
	m.SetNominal(p)
	leak := m.Leakage(make([]float64, len(p)), enabled)
	if leak[fp.Index(floorplan.TCBank(1))] != 0 {
		t.Fatal("gated bank leaks")
	}
}

func TestDistributedROBPowerReduction(t *testing.T) {
	// §4.1: "the distributed ROB reduces power by 11% on average".  With
	// the same per-instruction activity split across two partitions at
	// less than half the energy per access, total ROB power must drop,
	// and by a moderate amount (clock area grows 1.3x).
	mc, cfgC, fpC := fixture(false)
	md, cfgD, fpD := fixture(true)
	a := activity(cfgC, 100_000)
	pc := mc.Dynamic(a, allEnabled(cfgC.TC.Banks))
	ad := activity(cfgD, 100_000)
	pd := md.Dynamic(ad, allEnabled(cfgD.TC.Banks))

	robC := pc[fpC.Index(floorplan.ROB)]
	robD := pd[fpD.Index(floorplan.ROBPart(0))] + pd[fpD.Index(floorplan.ROBPart(1))]
	red := (robC - robD) / robC
	if red < 0.02 || red > 0.45 {
		t.Errorf("distributed ROB power reduction %.1f%%, want moderate (paper: 11%%)", red*100)
	}
}

func TestLeakageAt45IsConfiguredRatio(t *testing.T) {
	m, cfg, fp := fixture(false)
	nominal := m.Dynamic(activity(cfg, 100_000), allEnabled(cfg.TC.Banks))
	m.SetNominal(nominal)
	temps := make([]float64, len(fp.Blocks))
	for i := range temps {
		temps[i] = 45
	}
	leak := m.Leakage(temps, allEnabled(cfg.TC.Banks))
	for i := range leak {
		want := DefaultConstants().LeakRatioAt45 * nominal[i]
		if math.Abs(leak[i]-want) > 1e-12 {
			t.Fatalf("block %d leakage at 45°C = %v, want %v", i, leak[i], want)
		}
	}
}

func TestLeakageExponential(t *testing.T) {
	m, cfg, fp := fixture(false)
	nominal := m.Dynamic(activity(cfg, 100_000), allEnabled(cfg.TC.Banks))
	m.SetNominal(nominal)
	k := DefaultConstants()
	at := func(tC float64) float64 {
		temps := make([]float64, len(fp.Blocks))
		for i := range temps {
			temps[i] = tC
		}
		return Total(m.Leakage(temps, allEnabled(cfg.TC.Banks)))
	}
	l45 := at(45)
	lUp := at(45 + k.LeakDoubleDeg)
	if math.Abs(lUp/l45-2) > 1e-9 {
		t.Fatalf("leakage at +%v°C = %vx, want 2x", k.LeakDoubleDeg, lUp/l45)
	}
	// The runaway guard clamps far beyond physical temperatures.
	if at(1000) != at(200) {
		t.Fatal("leakage guard not applied")
	}
}

func TestZeroCycleIntervalSafe(t *testing.T) {
	m, cfg, _ := fixture(false)
	a := activity(cfg, 100_000)
	a.Cycles = 0
	p := m.Dynamic(a, allEnabled(cfg.TC.Banks))
	for _, w := range p {
		if math.IsNaN(w) || math.IsInf(w, 0) {
			t.Fatal("zero-cycle interval produced NaN/Inf power")
		}
	}
}

func TestAddTotalHelpers(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{3, 4}
	s := Add(a, b)
	if s[0] != 4 || s[1] != 6 {
		t.Fatalf("Add = %v", s)
	}
	if Total(s) != 10 {
		t.Fatalf("Total = %v", Total(s))
	}
}
