// Package bpred implements a branch-direction predictor substrate for the
// frontend.
//
// The paper charges branch-predictor activity (the BP block of the
// Figure 10 floorplan) and models mispredictions through its IA32 traces.
// The workload package normally supplies misprediction flags drawn from
// per-benchmark rates; this package provides the alternative the paper's
// real frontend would use: a gshare predictor with a bimodal choice
// fallback, trained on the actual branch outcomes of the synthetic
// stream.  core.Config.UseBranchPredictor selects it.
package bpred

// Predictor is a gshare direction predictor: the global history register
// is XORed with the branch PC to index a table of 2-bit saturating
// counters.  A small bimodal table handles strongly biased branches that
// gshare aliasing would otherwise pollute.
type Predictor struct {
	gshare  []uint8 // 2-bit counters
	bimodal []uint8
	choice  []uint8 // 2-bit chooser: >=2 selects gshare
	mask    uint32
	history uint32

	// Stats.
	Lookups     uint64
	Mispredicts uint64
}

// New builds a predictor with 2^bits entries per table.  bits must be in
// [4, 24].
func New(bits uint) *Predictor {
	if bits < 4 || bits > 24 {
		panic("bpred: table size out of range")
	}
	n := 1 << bits
	p := &Predictor{
		gshare:  make([]uint8, n),
		bimodal: make([]uint8, n),
		choice:  make([]uint8, n),
		mask:    uint32(n - 1),
	}
	for i := range p.gshare {
		p.gshare[i] = 1 // weakly not-taken
		p.bimodal[i] = 1
		p.choice[i] = 2 // weakly prefer gshare
	}
	return p
}

func (p *Predictor) gIndex(pc uint64) uint32 {
	return (uint32(pc>>2) ^ p.history) & p.mask
}

func (p *Predictor) bIndex(pc uint64) uint32 {
	return uint32(pc>>2) & p.mask
}

// Predict returns the predicted direction for the branch at pc.
func (p *Predictor) Predict(pc uint64) bool {
	p.Lookups++
	if p.choice[p.bIndex(pc)] >= 2 {
		return p.gshare[p.gIndex(pc)] >= 2
	}
	return p.bimodal[p.bIndex(pc)] >= 2
}

// Update trains the predictor with the resolved direction and returns
// whether the prediction it would have made was wrong.
func (p *Predictor) Update(pc uint64, taken bool) (mispredicted bool) {
	gi, bi := p.gIndex(pc), p.bIndex(pc)
	gPred := p.gshare[gi] >= 2
	bPred := p.bimodal[bi] >= 2
	useG := p.choice[bi] >= 2
	pred := bPred
	if useG {
		pred = gPred
	}
	mispredicted = pred != taken
	if mispredicted {
		p.Mispredicts++
	}

	// Train the chooser toward the component that was right.
	if gPred != bPred {
		if gPred == taken {
			p.choice[bi] = satInc(p.choice[bi])
		} else {
			p.choice[bi] = satDec(p.choice[bi])
		}
	}
	if taken {
		p.gshare[gi] = satInc(p.gshare[gi])
		p.bimodal[bi] = satInc(p.bimodal[bi])
	} else {
		p.gshare[gi] = satDec(p.gshare[gi])
		p.bimodal[bi] = satDec(p.bimodal[bi])
	}
	p.history = (p.history << 1) | b2u(taken)
	return mispredicted
}

// MispredictRate returns the fraction of updates that were mispredicted.
func (p *Predictor) MispredictRate() float64 {
	if p.Lookups == 0 {
		return 0
	}
	return float64(p.Mispredicts) / float64(p.Lookups)
}

func satInc(c uint8) uint8 {
	if c < 3 {
		return c + 1
	}
	return 3
}

func satDec(c uint8) uint8 {
	if c > 0 {
		return c - 1
	}
	return 0
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
