package bpred

import (
	"testing"

	"repro/internal/rng"
)

func TestAlwaysTakenLearned(t *testing.T) {
	p := New(10)
	pc := uint64(0x400)
	miss := 0
	for i := 0; i < 100; i++ {
		p.Predict(pc)
		if p.Update(pc, true) {
			miss++
		}
	}
	if miss > 5 {
		t.Errorf("always-taken branch mispredicted %d/100 times", miss)
	}
}

func TestAlternatingLearnedByHistory(t *testing.T) {
	// T,N,T,N... is perfectly predictable with one bit of history.
	p := New(12)
	pc := uint64(0x80)
	miss := 0
	for i := 0; i < 400; i++ {
		taken := i%2 == 0
		p.Predict(pc)
		if p.Update(pc, taken) && i > 100 {
			miss++
		}
	}
	if miss > 20 {
		t.Errorf("alternating branch mispredicted %d/300 after warmup", miss)
	}
}

func TestLoopPatternLearned(t *testing.T) {
	// Taken 7 times, not-taken once (an 8-iteration loop).
	p := New(14)
	pc := uint64(0x1234)
	miss := 0
	total := 0
	for i := 0; i < 3200; i++ {
		taken := i%8 != 7
		p.Predict(pc)
		m := p.Update(pc, taken)
		if i > 800 {
			total++
			if m {
				miss++
			}
		}
	}
	rate := float64(miss) / float64(total)
	if rate > 0.05 {
		t.Errorf("loop branch mispredict rate %.3f after warmup", rate)
	}
}

func TestRandomBranchNearHalf(t *testing.T) {
	// A truly random branch cannot be predicted: rate must be near 50%
	// (well above 30%, below 70%).
	p := New(12)
	src := rng.New(7)
	pc := uint64(0x900)
	miss, total := 0, 0
	for i := 0; i < 8000; i++ {
		taken := src.Bool(0.5)
		p.Predict(pc)
		if p.Update(pc, taken) {
			miss++
		}
		total++
	}
	rate := float64(miss) / float64(total)
	if rate < 0.3 || rate > 0.7 {
		t.Errorf("random branch rate %.3f; predictor is cheating or broken", rate)
	}
}

func TestBiasedBranchesBeatBias(t *testing.T) {
	// Branches taken with p=0.9: the predictor must do better than always
	// guessing the bias would on the complement (10%).
	p := New(12)
	src := rng.New(42)
	miss, total := 0, 0
	for i := 0; i < 20000; i++ {
		pc := uint64(0x1000 + (i%16)*64)
		taken := src.Bool(0.9)
		p.Predict(pc)
		if p.Update(pc, taken) && i > 2000 {
			miss++
		}
		if i > 2000 {
			total++
		}
	}
	rate := float64(miss) / float64(total)
	if rate > 0.15 {
		t.Errorf("biased branches mispredicted at %.3f", rate)
	}
}

func TestManyBranchesNoCrossPollution(t *testing.T) {
	// Two opposite-bias branches at different PCs must both be learned.
	p := New(12)
	missA, missB := 0, 0
	for i := 0; i < 500; i++ {
		p.Predict(0x100)
		if p.Update(0x100, true) && i > 50 {
			missA++
		}
		p.Predict(0x20000)
		if p.Update(0x20000, false) && i > 50 {
			missB++
		}
	}
	if missA > 30 || missB > 30 {
		t.Errorf("cross-pollution: missA=%d missB=%d", missA, missB)
	}
}

func TestStatsAndRate(t *testing.T) {
	p := New(8)
	if p.MispredictRate() != 0 {
		t.Error("fresh predictor has nonzero rate")
	}
	p.Predict(0)
	p.Update(0, true)
	if p.Lookups != 1 {
		t.Errorf("lookups = %d", p.Lookups)
	}
	if r := p.MispredictRate(); r < 0 || r > 1 {
		t.Errorf("rate = %v", r)
	}
}

func TestSizeValidation(t *testing.T) {
	for _, bits := range []uint{0, 3, 25} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", bits)
				}
			}()
			New(bits)
		}()
	}
}
