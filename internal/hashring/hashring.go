// Package hashring implements the consistent-hash ring shared by the
// scheduler's dispatch path and the backends' warm-up / anti-entropy
// machinery.  It lives under internal/ so simd can compute "which keys
// hash to my slice" with exactly the arithmetic the scheduler routes
// by, without importing pkg/scheduler (whose tests import simd).
package hashring

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is an immutable consistent-hash ring over a set of backend nodes.
// Each node is hashed at Replicas virtual points; a key is owned by the
// first virtual point clockwise from the key's hash.  A Ring is safe for
// concurrent use.
type Ring struct {
	nodes  []string // distinct node names, sorted
	points []ringPoint
}

type ringPoint struct {
	hash uint64
	node int // index into nodes
}

// DefaultReplicas is the virtual-point count per node used when
// New is given replicas < 1.  128 keeps the assignment spread within
// a few percent of uniform for small rings.
const DefaultReplicas = 128

// New builds a ring over nodes (duplicates are collapsed).  The
// resulting assignment depends only on the set of node names — not their
// order — so a restarted scheduler with the same backend set shards
// identically.
func New(nodes []string, replicas int) (*Ring, error) {
	if replicas < 1 {
		replicas = DefaultReplicas
	}
	distinct := make([]string, 0, len(nodes))
	seen := map[string]bool{}
	for _, n := range nodes {
		if n == "" {
			return nil, fmt.Errorf("hashring: empty node name")
		}
		if !seen[n] {
			seen[n] = true
			distinct = append(distinct, n)
		}
	}
	if len(distinct) == 0 {
		return nil, fmt.Errorf("hashring: ring needs at least one node")
	}
	sort.Strings(distinct)

	r := &Ring{
		nodes:  distinct,
		points: make([]ringPoint, 0, len(distinct)*replicas),
	}
	for i, n := range distinct {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{
				hash: hash64(fmt.Sprintf("%s#%d", n, v)),
				node: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		pa, pb := r.points[a], r.points[b]
		if pa.hash != pb.hash {
			return pa.hash < pb.hash
		}
		// Hash collisions between virtual points are broken by node name
		// so the ring stays order-independent.
		return r.nodes[pa.node] < r.nodes[pb.node]
	})
	return r, nil
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// Nodes returns the distinct node names, sorted.
func (r *Ring) Nodes() []string {
	return append([]string(nil), r.nodes...)
}

// start returns the index of the first virtual point clockwise from
// key's hash.
func (r *Ring) start(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Node returns the home node of key.
func (r *Ring) Node(key string) string {
	return r.nodes[r.points[r.start(key)].node]
}

// Sequence returns every node in the clockwise order their virtual
// points appear after key's hash: Sequence(key)[0] is the home node and
// the remainder is the rendezvous/failover order a dispatcher walks when
// backends fail.  Every node appears exactly once.
func (r *Ring) Sequence(key string) []string {
	out := make([]string, 0, len(r.nodes))
	seen := make([]bool, len(r.nodes))
	for i, n := r.start(key), 0; n < len(r.points); i, n = (i+1)%len(r.points), n+1 {
		p := r.points[i]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, r.nodes[p.node])
			if len(out) == len(r.nodes) {
				break
			}
		}
	}
	return out
}

// Successor returns node's clockwise ring neighbor: the first distinct
// node owning a virtual point after node's lowest-hash point.  It is the
// natural anti-entropy partner — the node that absorbs this one's slice
// when it fails.  Returns "" when node is absent or the ring has no
// other node.
func (r *Ring) Successor(node string) string {
	self := -1
	for i, n := range r.nodes {
		if n == node {
			self = i
			break
		}
	}
	if self < 0 || len(r.nodes) < 2 {
		return ""
	}
	first := -1
	for i, p := range r.points {
		if p.node == self {
			first = i
			break
		}
	}
	for i, n := (first+1)%len(r.points), 0; n < len(r.points); i, n = (i+1)%len(r.points), n+1 {
		if p := r.points[i]; p.node != self {
			return r.nodes[p.node]
		}
	}
	return ""
}
