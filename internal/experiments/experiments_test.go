package experiments

import (
	"strings"
	"testing"
)

// tinyOptions keeps the suite tests fast: two contrasting benchmarks at
// short length.
func tinyOptions() Options {
	o := DefaultOptions()
	o.Benchmarks = []string{"gzip", "swim"}
	o.Sim.WarmupOps = 30_000
	o.Sim.MeasureOps = 80_000
	return o
}

func TestFigure1Shape(t *testing.T) {
	r, err := Figure1(tinyOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 1 ordering: frontend among the hottest, UL2 the coolest.
	if r.Frontend.AbsMax < r.Processor.AbsMax*0.9 {
		t.Errorf("frontend peak %v far below processor peak %v", r.Frontend.AbsMax, r.Processor.AbsMax)
	}
	if r.UL2.AbsMax >= r.Frontend.AbsMax {
		t.Errorf("UL2 peak %v >= frontend peak %v", r.UL2.AbsMax, r.Frontend.AbsMax)
	}
	if r.UL2.Average >= r.Frontend.Average {
		t.Errorf("UL2 average %v >= frontend average %v", r.UL2.Average, r.Frontend.Average)
	}
	if r.Processor.AbsMax <= 0 || r.Processor.Average <= 0 {
		t.Error("non-positive rises")
	}
	if len(r.PerBench) != 2 {
		t.Errorf("per-benchmark results missing: %d", len(r.PerBench))
	}
	var sb strings.Builder
	r.Print(&sb)
	if !strings.Contains(sb.String(), "Processor") || !strings.Contains(sb.String(), "UL2") {
		t.Error("Print output incomplete")
	}
}

func TestFigure12Shape(t *testing.T) {
	rows, err := Figure12(tinyOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("Figure 12 rows = %d", len(rows))
	}
	r := rows[0]
	// §4.1: drastic ROB/RAT reductions at small slowdown.
	if r.ROB.AbsMax < 0.10 || r.RAT.AbsMax < 0.10 {
		t.Errorf("ROB/RAT peak reductions too small: %+v %+v", r.ROB, r.RAT)
	}
	if r.ROB.Average < 0.10 || r.RAT.Average < 0.10 {
		t.Errorf("ROB/RAT average reductions too small")
	}
	// Indirect TC benefit from heat spreading must not be negative-large.
	if r.TC.AbsMax < -0.05 {
		t.Errorf("TC peak got much worse: %v", r.TC.AbsMax)
	}
	if r.Slowdown < -0.01 || r.Slowdown > 0.10 {
		t.Errorf("slowdown %.3f outside plausible band (paper: 2%%)", r.Slowdown)
	}
}

func TestFigure13Shape(t *testing.T) {
	rows, err := Figure13(tinyOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("Figure 13 rows = %d", len(rows))
	}
	byName := map[string]TechniqueRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	bias := byName["Address Biasing"]
	hop := byName["Bank Hopping"]
	hopBias := byName["Bank Hopping + Address Biasing"]
	blank := byName["Blank silicon"]

	// Biasing alone: spreads but does not reduce activity — the average
	// barely moves (§4.2).
	if bias.TC.Average > 0.10 || bias.TC.Average < -0.10 {
		t.Errorf("biasing TC average moved too much: %v", bias.TC.Average)
	}
	// Hopping reduces the TC average markedly (paper: 17%).
	if hop.TC.Average < 0.08 {
		t.Errorf("hopping TC average reduction %.1f%% too small", hop.TC.Average*100)
	}
	// Hopping also cools the RAT through heat spreading (paper: 15-16%).
	if hop.RAT.Average < 0.03 {
		t.Errorf("hopping RAT average reduction %.1f%% too small", hop.RAT.Average*100)
	}
	// The proposed techniques outperform blank silicon on the TC average.
	if hop.TC.Average <= blank.TC.Average {
		t.Errorf("hopping (%v) does not beat blank silicon (%v)", hop.TC.Average, blank.TC.Average)
	}
	// Combination: slowdown stays small (paper: 4%).
	if hopBias.Slowdown > 0.12 {
		t.Errorf("hop+bias slowdown %.1f%% too large", hopBias.Slowdown*100)
	}
	// Hit-ratio loss from hopping is small (paper: <1%).
	if hop.TCHitLoss > 0.05 {
		t.Errorf("hopping hit loss %.3f too large", hop.TCHitLoss)
	}
}

func TestFigure14Shape(t *testing.T) {
	rows, err := Figure14(tinyOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("Figure 14 rows = %d", len(rows))
	}
	combined := rows[2]
	distOnly := rows[1]
	tcOnly := rows[0]
	// The combination is synergistic: it must beat either technique alone
	// on the trace cache and be at least comparable on ROB/RAT.
	if combined.TC.Average <= tcOnly.TC.Average-0.02 {
		t.Errorf("combined TC average %.2f worse than TC-only %.2f",
			combined.TC.Average, tcOnly.TC.Average)
	}
	if combined.ROB.AbsMax < distOnly.ROB.AbsMax-0.05 {
		t.Errorf("combined ROB %.2f much worse than distributed-only %.2f",
			combined.ROB.AbsMax, distOnly.ROB.AbsMax)
	}
	if combined.TC.AbsMax < 0.08 {
		t.Errorf("combined TC peak reduction %.1f%% too small (paper: 25%%)", combined.TC.AbsMax*100)
	}
}

func TestPrintRows(t *testing.T) {
	rows := []TechniqueRow{{Name: "X", Slowdown: 0.02}}
	var sb strings.Builder
	PrintRows(&sb, "title", rows)
	out := sb.String()
	if !strings.Contains(out, "title") || !strings.Contains(out, "X") ||
		!strings.Contains(out, "2.00%") {
		t.Errorf("PrintRows output wrong:\n%s", out)
	}
}

func TestTable1Contents(t *testing.T) {
	var sb strings.Builder
	Table1(&sb)
	out := sb.String()
	for _, want := range []string{"2 MB/8-way", "12 cycle hit", "500+ miss",
		"40-entry IQueue", "96-entry MemQueue", "160 int. registers",
		"16 KB/2-way", "write update", "8 micro-ops"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
}

func TestSuiteSelection(t *testing.T) {
	full, err := SuiteNames(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != 26 {
		t.Errorf("full suite = %d benchmarks, want 26", len(full))
	}
	quick, err := SuiteNames(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(quick) != 6 {
		t.Errorf("quick suite = %d", len(quick))
	}
	// An unknown benchmark used to panic deep inside profiles(); it now
	// surfaces as an error through the frontendsim request validation.
	bad := Options{Benchmarks: []string{"nosuch"}}
	if _, err := SuiteNames(bad); err == nil || !strings.Contains(err.Error(), "nosuch") {
		t.Errorf("unknown benchmark error = %v, want it to name the benchmark", err)
	}
	if _, err := Figure12(bad, nil); err == nil {
		t.Error("Figure12 with unknown benchmark did not error")
	}
}

func TestBanner(t *testing.T) {
	var sb strings.Builder
	Banner(&sb, "hello")
	if !strings.Contains(sb.String(), "hello") || !strings.Contains(sb.String(), "====") {
		t.Error("banner malformed")
	}
}
