// Package experiments regenerates every table and figure of the paper's
// evaluation section (§4):
//
//   - Table 1:  the processor configuration.
//   - Figure 1:  baseline temperature landscape (Processor / Frontend /
//     Backend / UL2, peak and average rise over ambient).
//   - Figure 12: distributed renaming and commit — ΔT reductions for the
//     reorder buffer, rename table and trace cache, plus slowdown.
//   - Figure 13: sub-banked trace cache — address biasing, blank silicon,
//     bank hopping, hopping+biasing.
//   - Figure 14: the combined distributed frontend.
//
// Each experiment sweeps a set of configurations over the SPEC2000
// profile suite through the public frontendsim Engine — benchmarks run on
// a bounded worker pool and the per-benchmark results are folded in suite
// order, so a parallel run aggregates identically to a serial one —
// averages the paper's metrics across benchmarks (the paper reports suite
// averages; "all of them follow the same trend"), and renders rows shaped
// like the paper's plots.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/pkg/frontendsim"
)

// Options selects the benchmarks and simulation lengths.
type Options struct {
	// Benchmarks restricts the suite (nil = all 26 SPEC2000 profiles).
	Benchmarks []string
	// Sim carries the per-run simulation options.
	Sim sim.Options
	// Workers bounds the Engine's worker pool (< 1 = GOMAXPROCS).
	Workers int
}

// DefaultOptions runs the full suite at the standard scaled lengths.
func DefaultOptions() Options {
	return Options{Sim: sim.DefaultOptions()}
}

// QuickOptions runs a 6-benchmark subset at reduced length; used by unit
// tests and the benchmark harness.
func QuickOptions() Options {
	o := Options{Sim: sim.DefaultOptions()}
	o.Sim.WarmupOps = 60_000
	o.Sim.MeasureOps = 150_000
	o.Benchmarks = []string{"gzip", "gcc", "mcf", "eon", "swim", "art"}
	return o
}

// suiteNames resolves the selected benchmarks in suite order, validating
// each through the frontendsim request path (an unknown benchmark used to
// panic here; it now surfaces as an error).
func (o Options) suiteNames() ([]string, error) {
	if o.Benchmarks == nil {
		return workload.Names(), nil
	}
	names := make([]string, 0, len(o.Benchmarks))
	for _, n := range o.Benchmarks {
		if err := (frontendsim.Request{Benchmark: n}).Validate(); err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		names = append(names, n)
	}
	return names, nil
}

// engine builds the public Engine the experiment runs through.
func (o Options) engine() *frontendsim.Engine {
	opts := []frontendsim.Option{
		frontendsim.WithWarmupOps(o.Sim.WarmupOps),
		frontendsim.WithMeasureOps(o.Sim.MeasureOps),
		frontendsim.WithIntervalCycles(o.Sim.IntervalCycles),
		frontendsim.WithIntervalSeconds(o.Sim.IntervalSeconds),
		frontendsim.WithWorkers(o.Workers),
	}
	if o.Sim.Thermal != nil {
		opts = append(opts, frontendsim.WithThermal(*o.Sim.Thermal))
	}
	if o.Sim.Power != nil {
		opts = append(opts, frontendsim.WithPower(*o.Sim.Power))
	}
	if o.Sim.DTM != nil {
		opts = append(opts, frontendsim.WithDTM(*o.Sim.DTM))
	}
	return frontendsim.New(opts...)
}

// runSuite sweeps one configuration over the selected benchmarks.
func runSuite(ctx context.Context, eng *frontendsim.Engine, names []string, cfg core.Config) (*frontendsim.SuiteResult, error) {
	return eng.RunSuite(ctx, frontendsim.SuiteRequest{
		Benchmarks: names,
		Request:    frontendsim.Request{Config: &cfg},
	})
}

// UnitMetrics bundles the per-unit temperature triples of one run.
type UnitMetrics struct {
	ROB metrics.Triple
	RAT metrics.Triple
	TC  metrics.Triple
}

func unitMetrics(r *frontendsim.Result) UnitMetrics {
	return UnitMetrics{
		ROB: r.Units[frontendsim.UnitROB],
		RAT: r.Units[frontendsim.UnitRAT],
		TC:  r.Units[frontendsim.UnitTraceCache],
	}
}

// TechniqueRow is one bar group of Figures 12-14: the suite-average
// reductions for ROB, RAT and trace cache, plus the average slowdown.
type TechniqueRow struct {
	Name     string
	ROB      metrics.Triple // reductions as fractions
	RAT      metrics.Triple
	TC       metrics.Triple
	Slowdown float64
	// TCHitLoss is the trace-cache hit-rate loss vs. the baseline
	// (positive = lost hits), reported by §4.2.
	TCHitLoss float64
}

// compareSuite runs baseline and technique configurations over the suite
// and averages per-benchmark reductions and slowdowns.  Every
// configuration sweep is parallel inside the Engine; the reduction sums
// accumulate per benchmark in suite order, keeping the figures identical
// to the old serial loop.
func compareSuite(ctx context.Context, base core.Config, techs []namedConfig, opt Options, progress io.Writer) ([]TechniqueRow, error) {
	names, err := opt.suiteNames()
	if err != nil {
		return nil, err
	}
	eng := opt.engine()
	if progress != nil {
		fmt.Fprintf(progress, "  baseline")
	}
	baseSuite, err := runSuite(ctx, eng, names, base)
	if err != nil {
		return nil, err
	}
	rows := make([]TechniqueRow, len(techs))
	for i, tc := range techs {
		rows[i].Name = tc.name
		if progress != nil {
			fmt.Fprintf(progress, " | %s", tc.name)
		}
		techSuite, err := runSuite(ctx, eng, names, tc.cfg)
		if err != nil {
			return nil, err
		}
		for j := range names {
			baseRes, res := baseSuite.Results[j], techSuite.Results[j]
			baseUnits, u := unitMetrics(baseRes), unitMetrics(res)
			rows[i].ROB = addTriple(rows[i].ROB, metrics.ReductionTriple(baseUnits.ROB, u.ROB))
			rows[i].RAT = addTriple(rows[i].RAT, metrics.ReductionTriple(baseUnits.RAT, u.RAT))
			rows[i].TC = addTriple(rows[i].TC, metrics.ReductionTriple(baseUnits.TC, u.TC))
			rows[i].Slowdown += metrics.Slowdown(baseRes.MeasCycles, res.MeasCycles)
			rows[i].TCHitLoss += baseRes.TCHitRate - res.TCHitRate
		}
	}
	n := float64(len(names))
	for i := range rows {
		rows[i].ROB = scaleTriple(rows[i].ROB, 1/n)
		rows[i].RAT = scaleTriple(rows[i].RAT, 1/n)
		rows[i].TC = scaleTriple(rows[i].TC, 1/n)
		rows[i].Slowdown /= n
		rows[i].TCHitLoss /= n
	}
	if progress != nil {
		fmt.Fprintln(progress)
	}
	return rows, nil
}

type namedConfig struct {
	name string
	cfg  core.Config
}

func addTriple(a, b metrics.Triple) metrics.Triple {
	return metrics.Triple{
		AbsMax:  a.AbsMax + b.AbsMax,
		Average: a.Average + b.Average,
		AvgMax:  a.AvgMax + b.AvgMax,
	}
}

func scaleTriple(a metrics.Triple, k float64) metrics.Triple {
	return metrics.Triple{AbsMax: a.AbsMax * k, Average: a.Average * k, AvgMax: a.AvgMax * k}
}

// ---------------------------------------------------------------------
// Figure 1

// Figure1Result holds the baseline temperature landscape.
type Figure1Result struct {
	Processor metrics.Triple // rises over ambient, suite averages
	Frontend  metrics.Triple
	Backend   metrics.Triple
	UL2       metrics.Triple
	PerBench  map[string]UnitMetrics
}

// Figure1 reproduces the peak/average comparison of the processor
// elements on the baseline configuration.
func Figure1(opt Options, progress io.Writer) (Figure1Result, error) {
	res := Figure1Result{PerBench: map[string]UnitMetrics{}}
	names, err := opt.suiteNames()
	if err != nil {
		return res, err
	}
	if progress != nil {
		fmt.Fprintf(progress, "  %s", strings.Join(names, " "))
	}
	suite, err := runSuite(context.Background(), opt.engine(), names, core.DefaultConfig())
	if err != nil {
		return res, err
	}
	for _, r := range suite.Results {
		res.Processor = addTriple(res.Processor, r.Units[frontendsim.UnitProcessor])
		res.Frontend = addTriple(res.Frontend, r.Units[frontendsim.UnitFrontend])
		res.Backend = addTriple(res.Backend, r.Units[frontendsim.UnitBackend])
		res.UL2 = addTriple(res.UL2, r.Units[frontendsim.UnitUL2])
		res.PerBench[r.Benchmark] = unitMetrics(r)
	}
	n := 1 / float64(len(names))
	res.Processor = scaleTriple(res.Processor, n)
	res.Frontend = scaleTriple(res.Frontend, n)
	res.Backend = scaleTriple(res.Backend, n)
	res.UL2 = scaleTriple(res.UL2, n)
	if progress != nil {
		fmt.Fprintln(progress)
	}
	return res, nil
}

// Print renders Figure 1 as the paper's two bar groups.
func (r Figure1Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 1. Temperature comparison of the processor elements")
	fmt.Fprintln(w, "(increase over ambient, °C; suite average)")
	fmt.Fprintf(w, "%-10s %8s %8s\n", "", "Peak", "Average")
	rows := []struct {
		name string
		t    metrics.Triple
	}{
		{"Processor", r.Processor}, {"Frontend", r.Frontend},
		{"Backend", r.Backend}, {"UL2", r.UL2},
	}
	for _, row := range rows {
		fmt.Fprintf(w, "%-10s %8.1f %8.1f\n", row.name, row.t.AbsMax, row.t.Average)
	}
}

// ---------------------------------------------------------------------
// Figures 12, 13, 14

// Figure12 reproduces the distributed renaming and commit evaluation.
func Figure12(opt Options, progress io.Writer) ([]TechniqueRow, error) {
	base := core.DefaultConfig()
	return compareSuite(context.Background(), base, []namedConfig{
		{"Distributed Rename and Commit", base.WithDistributedFrontend(2)},
	}, opt, progress)
}

// Figure13 reproduces the thermal-aware trace cache evaluation.
func Figure13(opt Options, progress io.Writer) ([]TechniqueRow, error) {
	base := core.DefaultConfig()
	return compareSuite(context.Background(), base, []namedConfig{
		{"Address Biasing", base.WithBiasedMapping()},
		{"Blank silicon", base.WithBlankSilicon()},
		{"Bank Hopping", base.WithBankHopping()},
		{"Bank Hopping + Address Biasing", base.WithBankHopping().WithBiasedMapping()},
	}, opt, progress)
}

// Figure14 reproduces the combined distributed frontend evaluation.
func Figure14(opt Options, progress io.Writer) ([]TechniqueRow, error) {
	base := core.DefaultConfig()
	return compareSuite(context.Background(), base, []namedConfig{
		{"Bank Hopping + Address Biasing", base.WithBankHopping().WithBiasedMapping()},
		{"Distributed Rename and Commit", base.WithDistributedFrontend(2)},
		{"Distributed Rename and Commit + Bank Hopping + Address Biasing",
			base.WithDistributedFrontend(2).WithBankHopping().WithBiasedMapping()},
	}, opt, progress)
}

// PrintRows renders technique rows in the layout of Figures 12-14.
func PrintRows(w io.Writer, title string, rows []TechniqueRow) {
	fmt.Fprintln(w, title)
	fmt.Fprintln(w, "(reduction of the temperature rise over ambient, %; suite average)")
	fmt.Fprintf(w, "%-64s %-24s %-24s %-24s %9s\n", "",
		"Reorder Buffer", "Rename Table", "Trace Cache", "Slowdown")
	fmt.Fprintf(w, "%-64s %7s %8s %7s  %7s %8s %7s  %7s %8s %7s\n", "",
		"AbsMax", "Average", "AvgMax", "AbsMax", "Average", "AvgMax", "AbsMax", "Average", "AvgMax")
	for _, r := range rows {
		fmt.Fprintf(w, "%-64s %6.1f%% %7.1f%% %6.1f%%  %6.1f%% %7.1f%% %6.1f%%  %6.1f%% %7.1f%% %6.1f%%   %6.2f%%\n",
			r.Name,
			r.ROB.AbsMax*100, r.ROB.Average*100, r.ROB.AvgMax*100,
			r.RAT.AbsMax*100, r.RAT.Average*100, r.RAT.AvgMax*100,
			r.TC.AbsMax*100, r.TC.Average*100, r.TC.AvgMax*100,
			r.Slowdown*100)
	}
}

// ---------------------------------------------------------------------
// Table 1

// Table1 renders the processor configuration as in the paper.
func Table1(w io.Writer) {
	cfg := core.DefaultConfig()
	fmt.Fprintln(w, "Table 1. Processor configuration")
	fmt.Fprintln(w, "Frontend")
	fmt.Fprintf(w, "  Trace cache/Fetch      %d traces/bank x %d banks, %d-way, %d cycle fetch-to-dispatch latency\n",
		cfg.TC.TracesPerBank, cfg.TC.Banks, cfg.TC.Ways, cfg.FetchToDispatch)
	fmt.Fprintf(w, "  Decode, rename, steer  %d cycles (regardless of the destination cluster)\n", cfg.DecodeLatency)
	fmt.Fprintf(w, "  UL2                    %d MB/%d-way, %d cycle hit, %d+ miss\n",
		cfg.UL2SizeB>>20, cfg.UL2Ways, cfg.UL2HitLat, cfg.MemLat)
	fmt.Fprintf(w, "  Communications         %d memory buses, %d disambiguation buses, %d-cycle latency + %d-cycle arbiter,\n",
		cfg.MemBuses, cfg.DisBuses, cfg.BusLatency, cfg.BusArbiter)
	fmt.Fprintf(w, "                         %d bidirectional p2p link (1 cycle per hop; 2 from side to side of the chip)\n",
		cfg.LinkWidth)
	fmt.Fprintln(w, "Each backend")
	fmt.Fprintf(w, "  Queues                 %d-entry IQueue 1 inst/cycle, %d-entry FPQueue 1 inst/cycle, %d-entry CopyQueue\n",
		cfg.Cluster.IntQ, cfg.Cluster.FPQ, cfg.Cluster.CopyQ)
	fmt.Fprintf(w, "                         1 inst/cycle, %d-entry MemQueue 1 inst/cycle, %d cycle dispatch latency;\n",
		cfg.Cluster.MemQ, cfg.DispatchLatency)
	fmt.Fprintf(w, "                         %d entries per prescheduler queue\n", cfg.Cluster.Prescheduler)
	fmt.Fprintf(w, "  Register file          %d int. registers and %d FP registers\n",
		cfg.Cluster.IntRegs, cfg.Cluster.FPRegs)
	fmt.Fprintf(w, "  Data cache             %d KB/%d-way, %d cycle hit, write update\n",
		cfg.DL1SizeB>>10, cfg.DL1Ways, cfg.DL1HitLat)
	fmt.Fprintf(w, "Widths                   fetch/dispatch/commit up to %d micro-ops per cycle\n", cfg.FetchWidth)
	fmt.Fprintf(w, "Reorder buffer           %d entries\n", cfg.ROBEntries)
}

// SuiteNames returns the benchmark names an Options selects, sorted.
func SuiteNames(opt Options) ([]string, error) {
	names, err := opt.suiteNames()
	if err != nil {
		return nil, err
	}
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	return sorted, nil
}

// Banner renders a section separator used by cmd/experiments.
func Banner(w io.Writer, title string) {
	fmt.Fprintln(w, strings.Repeat("=", 100))
	fmt.Fprintln(w, title)
	fmt.Fprintln(w, strings.Repeat("=", 100))
}
