package backend

import "testing"

func TestRegFileWaitersFIFO(t *testing.T) {
	rf := NewRegFile(8)
	rf.EnsureWaiterTokens(16)
	rf.SetPending(3)
	rf.Subscribe(3, 7)
	rf.Subscribe(3, 2)
	rf.Subscribe(3, 11)
	if !rf.HasWaiters(3) {
		t.Fatal("HasWaiters false after Subscribe")
	}
	got := rf.SetReady(3, 40)
	want := []int32{7, 2, 11}
	if len(got) != len(want) {
		t.Fatalf("SetReady returned %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SetReady returned %v, want %v (subscription order)", got, want)
		}
	}
	if rf.HasWaiters(3) {
		t.Fatal("waiters survived SetReady")
	}
	if rf.ReadyAt(3) != 40 {
		t.Fatalf("ReadyAt = %d", rf.ReadyAt(3))
	}
}

func TestRegFileWaitersIndependentRegisters(t *testing.T) {
	rf := NewRegFile(8)
	rf.EnsureWaiterTokens(8)
	rf.SetPending(1)
	rf.SetPending(2)
	rf.Subscribe(1, 0)
	rf.Subscribe(2, 1)
	if got := rf.SetReady(1, 10); len(got) != 1 || got[0] != 0 {
		t.Fatalf("register 1 waiters = %v", got)
	}
	if got := rf.SetReady(2, 11); len(got) != 1 || got[0] != 1 {
		t.Fatalf("register 2 waiters = %v", got)
	}
}

// TestRegFileUnsubscribeDrains pins the squash-drain contract: an
// unsubscribed token must never be handed back (no dangling wakeup), and
// the remaining waiters must still be notified (no lost completion).
func TestRegFileUnsubscribeDrains(t *testing.T) {
	rf := NewRegFile(4)
	rf.EnsureWaiterTokens(8)
	rf.SetPending(0)
	rf.Subscribe(0, 1)
	rf.Subscribe(0, 2)
	rf.Subscribe(0, 3)
	rf.Unsubscribe(0, 2) // middle
	rf.Unsubscribe(0, 5) // never subscribed: no-op
	if got := rf.SetReady(0, 9); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("waiters after unsubscribe = %v, want [1 3]", got)
	}

	// Head and tail removal, including emptying the list entirely.
	rf.SetPending(1)
	rf.Subscribe(1, 4)
	rf.Subscribe(1, 5)
	rf.Unsubscribe(1, 4)
	rf.Unsubscribe(1, 5)
	if rf.HasWaiters(1) {
		t.Fatal("list not empty after removing every waiter")
	}
	if got := rf.SetReady(1, 3); len(got) != 0 {
		t.Fatalf("drained register still notified %v", got)
	}
	// The tail must have been reset: a fresh subscription still works.
	rf.SetPending(1)
	rf.Subscribe(1, 6)
	if got := rf.SetReady(1, 5); len(got) != 1 || got[0] != 6 {
		t.Fatalf("subscription after full drain = %v, want [6]", got)
	}
}

// TestRegFileSetPendingWithWaitersPanics pins the reallocation guard: a
// register handed to a new producer while a stale subscription survives
// would strand that waiter forever, so it must fail loudly.
func TestRegFileSetPendingWithWaitersPanics(t *testing.T) {
	rf := NewRegFile(4)
	rf.EnsureWaiterTokens(4)
	rf.SetPending(2)
	rf.Subscribe(2, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("SetPending with live waiters did not panic")
		}
	}()
	rf.SetPending(2)
}

func TestRegFileSubscribeGrowsTokenSpace(t *testing.T) {
	rf := NewRegFile(4)
	// No EnsureWaiterTokens: Subscribe must size the space on demand.
	rf.SetPending(0)
	rf.Subscribe(0, 123)
	if got := rf.SetReady(0, 1); len(got) != 1 || got[0] != 123 {
		t.Fatalf("waiters = %v, want [123]", got)
	}
}
