package backend

import (
	"testing"
	"testing/quick"
)

func TestRegFileReadiness(t *testing.T) {
	rf := NewRegFile(8)
	if rf.Size() != 8 {
		t.Fatalf("size = %d", rf.Size())
	}
	if rf.ReadyAt(3) != 0 {
		t.Fatal("fresh register not ready at 0")
	}
	rf.SetPending(3)
	if rf.ReadyAt(3) != NeverReady {
		t.Fatal("SetPending did not mark register")
	}
	rf.SetReady(3, 17)
	if rf.ReadyAt(3) != 17 {
		t.Fatalf("ReadyAt = %d", rf.ReadyAt(3))
	}
	rf.CountRead()
	if rf.Writes != 1 || rf.Reads != 1 {
		t.Fatalf("counters = %d/%d", rf.Reads, rf.Writes)
	}
}

func TestQueueDispatchAdvanceIssue(t *testing.T) {
	q := NewIssueQueue(IntQueue, 4, 2)
	if !q.CanDispatch() {
		t.Fatal("fresh queue cannot dispatch")
	}
	ok := q.Dispatch(QueueEntry{ID: 1, Seq: 1}, 10)
	if !ok {
		t.Fatal("dispatch failed")
	}
	q.Advance(5)
	if q.WindowOccupancy() != 0 {
		t.Fatal("entry reached window early")
	}
	q.Advance(10)
	if q.WindowOccupancy() != 1 {
		t.Fatal("entry did not reach window")
	}
	allReady := func(id int32, now uint64) (bool, uint64) { return true, 0 }
	id, issued := q.Issue(10, allReady)
	if !issued || id != 1 {
		t.Fatalf("issue = %d,%v", id, issued)
	}
	if _, issued := q.Issue(10, allReady); issued {
		t.Fatal("issued from empty window")
	}
	if q.IssueCount != 1 {
		t.Fatalf("IssueCount = %d", q.IssueCount)
	}
}

func TestQueueOldestFirst(t *testing.T) {
	q := NewIssueQueue(IntQueue, 8, 8)
	q.Dispatch(QueueEntry{ID: 10, Seq: 5}, 0)
	q.Dispatch(QueueEntry{ID: 11, Seq: 2}, 0)
	q.Dispatch(QueueEntry{ID: 12, Seq: 9}, 0)
	q.Advance(0)
	allReady := func(id int32, now uint64) (bool, uint64) { return true, 0 }
	id, _ := q.Issue(0, allReady)
	if id != 11 {
		t.Fatalf("issued %d, want oldest (11)", id)
	}
}

func TestQueueSkipsNotReady(t *testing.T) {
	q := NewIssueQueue(IntQueue, 8, 8)
	q.Dispatch(QueueEntry{ID: 1, Seq: 1}, 0)
	q.Dispatch(QueueEntry{ID: 2, Seq: 2}, 0)
	q.Advance(0)
	onlyTwo := func(id int32, now uint64) (bool, uint64) {
		if id == 2 {
			return true, 0
		}
		return false, 100
	}
	id, ok := q.Issue(0, onlyTwo)
	if !ok || id != 2 {
		t.Fatalf("issue = %d,%v; want 2 (out-of-order issue)", id, ok)
	}
	// Entry 1 cached its retry time: ready func must not be called again
	// before cycle 100.
	calls := 0
	counting := func(id int32, now uint64) (bool, uint64) { calls++; return false, 200 }
	q.Issue(50, counting)
	if calls != 0 {
		t.Fatalf("ready func called %d times before retry time", calls)
	}
	q.Issue(100, counting)
	if calls != 1 {
		t.Fatalf("ready func not re-evaluated at retry time (calls=%d)", calls)
	}
}

func TestQueueBackpressure(t *testing.T) {
	q := NewIssueQueue(IntQueue, 1, 2)
	q.Dispatch(QueueEntry{ID: 1, Seq: 1}, 0)
	q.Dispatch(QueueEntry{ID: 2, Seq: 2}, 0)
	if q.CanDispatch() {
		t.Fatal("prescheduler over capacity")
	}
	if q.Dispatch(QueueEntry{ID: 3, Seq: 3}, 0) {
		t.Fatal("dispatch into full prescheduler")
	}
	q.Advance(0)
	if q.WindowOccupancy() != 1 {
		t.Fatalf("window occupancy = %d, want 1 (capacity)", q.WindowOccupancy())
	}
	// One entry remains stuck in the prescheduler until the window drains.
	if !q.CanDispatch() {
		t.Fatal("prescheduler did not free a slot")
	}
	if q.Occupancy() != 2 {
		t.Fatalf("occupancy = %d", q.Occupancy())
	}
}

func TestMOBDisambiguation(t *testing.T) {
	m := NewMOB(8)
	m.Alloc(1, true) // store, address unknown
	m.Alloc(2, false)
	// Load 2 cannot issue: older store address unknown.
	if ok, _ := m.Disambiguate(2, 0x40, 5); ok {
		t.Fatal("load issued past unknown store address")
	}
	m.SetAddr(1, 0x40, 4)
	ok, fwd := m.Disambiguate(2, 0x40, 5)
	if !ok || !fwd {
		t.Fatalf("disambiguate = %v,%v; want forwarding hit", ok, fwd)
	}
	ok, fwd = m.Disambiguate(2, 0x80, 5)
	if !ok || fwd {
		t.Fatalf("different line: = %v,%v; want ok, no forward", ok, fwd)
	}
	// Not yet visible at cycle 3.
	if ok, _ := m.Disambiguate(2, 0x40, 3); ok {
		t.Fatal("address visible before broadcast arrival")
	}
}

func TestMOBReleaseOrder(t *testing.T) {
	m := NewMOB(3)
	m.Alloc(1, true)
	m.Alloc(2, false)
	m.Alloc(3, true)
	if m.CanAlloc() {
		t.Fatal("MOB over capacity")
	}
	m.Release(2) // load in the middle finishes first
	if m.Occupancy() != 3 {
		t.Fatal("capacity freed out of order")
	}
	m.Release(1)
	if m.Occupancy() != 1 {
		t.Fatalf("occupancy = %d after head release, want 1", m.Occupancy())
	}
	if !m.CanAlloc() {
		t.Fatal("MOB did not free capacity")
	}
}

func TestMOBStoresDoNotBlockOlderLoads(t *testing.T) {
	m := NewMOB(8)
	m.Alloc(5, true)
	if ok, _ := m.Disambiguate(3, 0x40, 0); !ok {
		t.Fatal("younger store blocked an older load")
	}
}

func TestMOBOutOfOrderAllocPanics(t *testing.T) {
	m := NewMOB(8)
	m.Alloc(5, true)
	defer func() {
		if recover() == nil {
			t.Error("out-of-order MOB alloc did not panic")
		}
	}()
	m.Alloc(3, false)
}

func TestFUUnpipelined(t *testing.T) {
	var f FU
	if !f.TryStart(10, 20, false) {
		t.Fatal("idle divider refused work")
	}
	if f.TryStart(15, 20, false) {
		t.Fatal("busy divider accepted work")
	}
	if !f.TryStart(30, 20, false) {
		t.Fatal("freed divider refused work")
	}
	// Pipelined ops always start.
	if !f.TryStart(31, 4, true) || !f.TryStart(31, 4, true) {
		t.Fatal("pipelined unit refused work")
	}
	if f.Ops != 4 {
		t.Fatalf("Ops = %d", f.Ops)
	}
}

func TestNewClusterTable1(t *testing.T) {
	c := NewCluster(2, Config{
		IntRegs: 160, FPRegs: 160, IntQ: 40, FPQ: 40, CopyQ: 40, MemQ: 96,
		Prescheduler: 20, MOBEntries: 96,
	})
	if c.Index != 2 {
		t.Fatalf("index = %d", c.Index)
	}
	if c.IntRF.Size() != 160 || c.FPRF.Size() != 160 {
		t.Fatal("register file sizes wrong")
	}
	for k := QueueKind(0); k < NumQueues; k++ {
		if c.Queues[k] == nil || c.Queues[k].Kind() != k {
			t.Fatalf("queue %v missing or mislabelled", k)
		}
	}
	if IntQueue.String() != "IQ" || MemQueue.String() != "MemQ" {
		t.Fatal("queue names wrong")
	}
}

func TestBadSizesPanic(t *testing.T) {
	cases := []func(){
		func() { NewIssueQueue(IntQueue, 0, 4) },
		func() { NewIssueQueue(IntQueue, 4, 0) },
		func() { NewMOB(0) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

// Property: a queue never holds more than capacity+prescap entries and
// issue drains exactly what was dispatched.
func TestQuickQueueConservation(t *testing.T) {
	q := NewIssueQueue(FPQueue, 4, 4)
	dispatched, issued := 0, 0
	now := uint64(0)
	allReady := func(id int32, _ uint64) (bool, uint64) { return true, 0 }
	f := func(doIssue bool) bool {
		now++
		if doIssue {
			q.Advance(now)
			if _, ok := q.Issue(now, allReady); ok {
				issued++
			}
		} else if q.Dispatch(QueueEntry{ID: int32(dispatched), Seq: uint64(dispatched)}, now) {
			dispatched++
		}
		return q.Occupancy() == dispatched-issued && q.Occupancy() <= 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: disambiguation is monotone in time — once a load may issue it
// may issue at any later cycle (with no new stores).
func TestQuickDisambiguationMonotone(t *testing.T) {
	m := NewMOB(16)
	m.Alloc(1, true)
	m.Alloc(4, true)
	m.SetAddr(1, 0x100, 3)
	m.SetAddr(4, 0x200, 7)
	f := func(t1, t2 uint16) bool {
		a, b := uint64(t1), uint64(t2)
		if a > b {
			a, b = b, a
		}
		okA, _ := m.Disambiguate(9, 0x300, a)
		okB, _ := m.Disambiguate(9, 0x300, b)
		return !okA || okB
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
