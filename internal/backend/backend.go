// Package backend models one backend cluster of the processor (Figure 2b
// and Table 1 of the paper): the issue queues with their prescheduler
// queues, the integer and floating-point register files, the functional
// units, and the memory order buffer with its distributed disambiguation
// support.
//
// The backend is deliberately free of pipeline control: the core package
// drives it cycle by cycle.  This package owns the structures, their
// capacity rules and their activity counters.
package backend

import "fmt"

// NeverReady marks a register whose value has not been produced yet.
const NeverReady = ^uint64(0)

// QueueKind enumerates the four issue queues of a cluster (Table 1).
type QueueKind uint8

const (
	IntQueue  QueueKind = iota // 40-entry IQueue, 1 inst/cycle
	FPQueue                    // 40-entry FPQueue, 1 inst/cycle
	CopyQueue                  // 40-entry CopyQueue, 1 inst/cycle
	MemQueue                   // 96-entry MemQueue, 1 inst/cycle
	NumQueues
)

var queueNames = [NumQueues]string{"IQ", "FPQ", "CopyQ", "MemQ"}

// String returns the queue's short name.
func (k QueueKind) String() string { return queueNames[k] }

// RegFile tracks the readiness of the physical registers of one register
// space in one cluster.  Values themselves are not simulated.
//
// Each register additionally carries a producer-wakeup subscription list:
// a consumer that finds the register NeverReady can Subscribe a token
// once, and SetReady hands every subscribed token back to the caller so
// it can be scheduled at the register's true ready cycle instead of
// polling.  The lists are intrusive FIFOs over a token-indexed next
// array, so subscription traffic never touches the allocator once
// EnsureWaiterTokens has sized the token space.
type RegFile struct {
	readyAt []uint64
	// waiterHead/waiterTail hold, per register, the FIFO waiter list of
	// subscribed tokens (-1 = empty); waiterNext links tokens.
	waiterHead []int32
	waiterTail []int32
	waiterNext []int32
	notifyBuf  []int32
	// Reads and Writes are activity counters for the power model.
	Reads  uint64
	Writes uint64
}

// NewRegFile builds a register file with n physical registers, all ready
// at cycle 0 (the architectural initial state).
func NewRegFile(n int) *RegFile {
	rf := &RegFile{
		readyAt:    make([]uint64, n),
		waiterHead: make([]int32, n),
		waiterTail: make([]int32, n),
	}
	for i := range rf.waiterHead {
		rf.waiterHead[i] = -1
		rf.waiterTail[i] = -1
	}
	return rf
}

// Size returns the number of physical registers.
func (rf *RegFile) Size() int { return len(rf.readyAt) }

// EnsureWaiterTokens sizes the subscription token space for tokens in
// [0, n).  Subscribe grows it on demand, but pre-sizing keeps the
// steady-state wakeup path allocation-free.
func (rf *RegFile) EnsureWaiterTokens(n int) {
	for len(rf.waiterNext) < n {
		rf.waiterNext = append(rf.waiterNext, -1)
	}
	if cap(rf.notifyBuf) < n {
		rf.notifyBuf = make([]int32, 0, n)
	}
}

// Subscribe appends token to register p's waiter list.  The token is
// handed back by the SetReady call that produces p's value.  A token must
// not be subscribed twice without an intervening SetReady/Unsubscribe.
func (rf *RegFile) Subscribe(p int16, token int32) {
	rf.EnsureWaiterTokens(int(token) + 1)
	rf.waiterNext[token] = -1
	if rf.waiterTail[p] < 0 {
		rf.waiterHead[p] = token
	} else {
		rf.waiterNext[rf.waiterTail[p]] = token
	}
	rf.waiterTail[p] = token
}

// Unsubscribe removes token from register p's waiter list.  It is the
// drain hook for any path that abandons a waiting consumer: the current
// machine never squashes in-flight ops (mispredict resolution only
// stalls fetch), so nothing in core calls it yet, but a flush path must
// drain its subscriptions this way or SetPending will panic at the
// register's reallocation.  Removing a token that is not subscribed is a
// no-op.
func (rf *RegFile) Unsubscribe(p int16, token int32) {
	prev := int32(-1)
	for t := rf.waiterHead[p]; t >= 0; t = rf.waiterNext[t] {
		if t != token {
			prev = t
			continue
		}
		next := rf.waiterNext[t]
		if prev < 0 {
			rf.waiterHead[p] = next
		} else {
			rf.waiterNext[prev] = next
		}
		if rf.waiterTail[p] == t {
			rf.waiterTail[p] = prev
		}
		rf.waiterNext[t] = -1
		return
	}
}

// HasWaiters reports whether any token is subscribed to register p.
func (rf *RegFile) HasWaiters(p int16) bool { return rf.waiterHead[p] >= 0 }

// SetPending marks register p as not yet produced.  A register is only
// re-marked pending when it is reallocated to a new producer, by which
// point every waiter of the old value must have been woken or drained —
// a surviving subscription would never fire, so fail loudly.
func (rf *RegFile) SetPending(p int16) {
	if rf.waiterHead[p] >= 0 {
		panic("backend: register reallocated with live waiter subscriptions")
	}
	rf.readyAt[p] = NeverReady
}

// SetReady records that register p's value is available from cycle c on,
// and counts the write-back.  It returns the tokens subscribed to p in
// FIFO order (or nil), clearing the subscription list; the returned slice
// is only valid until the next SetReady on this register file.
func (rf *RegFile) SetReady(p int16, c uint64) []int32 {
	rf.readyAt[p] = c
	rf.Writes++
	if rf.waiterHead[p] < 0 {
		return nil
	}
	buf := rf.notifyBuf[:0]
	for t := rf.waiterHead[p]; t >= 0; {
		next := rf.waiterNext[t]
		rf.waiterNext[t] = -1
		buf = append(buf, t)
		t = next
	}
	rf.waiterHead[p] = -1
	rf.waiterTail[p] = -1
	rf.notifyBuf = buf
	return buf
}

// ReadyAt returns the cycle from which p's value can be read.
func (rf *RegFile) ReadyAt(p int16) uint64 { return rf.readyAt[p] }

// ReadyAtPtr returns a stable pointer to p's readiness slot.  The backing
// array never reallocates, so the scheduler's wakeup loop can cache the
// pointer at dispatch and poll it with a single load per cycle.
func (rf *RegFile) ReadyAtPtr(p int16) *uint64 { return &rf.readyAt[p] }

// CountRead records an operand read for the power model.
func (rf *RegFile) CountRead() { rf.Reads++ }

// QueueEntry is one instruction waiting in an issue queue.
type QueueEntry struct {
	ID  int32  // core's in-flight op index
	Seq uint64 // program order, for oldest-first selection
	// Operand readiness is resolved by the core through a callback; the
	// queue keeps a cached earliest-possible issue cycle to avoid
	// re-evaluating entries known not to be ready.
	NotBefore uint64
}

// IssueQueue is one scheduler: a prescheduler FIFO feeding an issue
// window that issues at most one instruction per cycle (Table 1).  Both
// stages live in fixed ring/flat buffers allocated at construction, so
// steady-state dispatch and wakeup never touch the allocator.
type IssueQueue struct {
	kind     QueueKind
	capacity int
	// Prescheduler ring buffer: presCount live entries starting at
	// presHead; len(pres) is a power of two >= prescap.
	pres      []presEntry
	presMask  int
	presHead  int
	presCount int
	prescap   int
	window    []QueueEntry // len <= capacity; backing array never grows
	// WakeAt is a conservative lower bound on the next cycle at which any
	// window entry could pass its NotBefore gate.  The core's inlined
	// wakeup scan maintains it and skips the whole window while
	// WakeAt > now — a skipped scan would have evaluated no entry, so the
	// activity counters are unaffected.  Advance resets it when new
	// entries (NotBefore 0) reach the window.
	WakeAt uint64
	// Activity counters: writes on insert, reads on wakeup/select.
	Writes uint64
	Reads  uint64
	// IssueCount counts issued instructions.
	IssueCount uint64
}

type presEntry struct {
	e       QueueEntry
	arrives uint64 // cycle the entry reaches the issue window
}

// NewIssueQueue builds a queue of the given kind with the Table 1
// capacities: window size `capacity`, prescheduler size `prescap`.
func NewIssueQueue(kind QueueKind, capacity, prescap int) *IssueQueue {
	if capacity < 1 || prescap < 1 {
		panic(fmt.Sprintf("backend: bad queue sizes %d/%d", capacity, prescap))
	}
	ring := 1
	for ring < prescap {
		ring *= 2
	}
	return &IssueQueue{
		kind:     kind,
		capacity: capacity,
		pres:     make([]presEntry, ring),
		presMask: ring - 1,
		prescap:  prescap,
		window:   make([]QueueEntry, 0, capacity),
	}
}

// Kind returns the queue kind.
func (q *IssueQueue) Kind() QueueKind { return q.kind }

// CanDispatch reports whether the prescheduler can accept an entry.
func (q *IssueQueue) CanDispatch() bool { return q.presCount < q.prescap }

// Dispatch inserts an instruction into the prescheduler; it will reach
// the issue window at cycle `arrives` (dispatch latency is charged by the
// caller).  ok is false if the prescheduler is full.
func (q *IssueQueue) Dispatch(e QueueEntry, arrives uint64) bool {
	if q.presCount >= q.prescap {
		return false
	}
	q.pres[(q.presHead+q.presCount)&q.presMask] = presEntry{e: e, arrives: arrives}
	q.presCount++
	q.Writes++
	return true
}

// Advance moves prescheduled entries whose time has come into the issue
// window, in order, while the window has space.
func (q *IssueQueue) Advance(now uint64) {
	for q.presCount > 0 && q.pres[q.presHead].arrives <= now && len(q.window) < q.capacity {
		q.window = append(q.window, q.pres[q.presHead].e)
		q.presHead = (q.presHead + 1) & q.presMask
		q.presCount--
		q.Writes++
		q.WakeAt = 0 // the new entry is immediately evaluable
	}
}

// ReadyFunc decides whether an entry can issue at cycle now.  It returns
// ok, and if not ok, the earliest future cycle at which it is worth
// re-evaluating the entry (NeverReady if unknown).
type ReadyFunc func(id int32, now uint64) (ok bool, retry uint64)

// Issue selects the oldest ready instruction in the window, removes it
// and returns its id.  It returns (-1, false) if nothing can issue this
// cycle.  Selection is oldest-first, matching the age-ordered schedulers
// the paper assumes.
//
// The core's issueAll inlines this same scan (direct method call instead
// of the ReadyFunc closure — measurably cheaper at wakeup-poll rates);
// the two must stay in lockstep, including the WakeAt maintenance, so a
// queue driven through either entry point behaves identically.
func (q *IssueQueue) Issue(now uint64, ready ReadyFunc) (int32, bool) {
	if q.WakeAt > now {
		return -1, false // nothing could pass its NotBefore gate
	}
	best := -1
	var bestSeq uint64
	wake := ^uint64(0)
	for i := range q.window {
		e := &q.window[i]
		if e.NotBefore > now {
			if e.NotBefore < wake {
				wake = e.NotBefore
			}
			continue
		}
		q.Reads++
		ok, retry := ready(e.ID, now)
		if !ok {
			if retry <= now {
				retry = now + 1
			}
			e.NotBefore = retry
			if retry < wake {
				wake = retry
			}
			continue
		}
		if best == -1 || e.Seq < bestSeq {
			best = i
			bestSeq = e.Seq
		}
		if e.NotBefore < wake {
			wake = e.NotBefore
		}
	}
	q.WakeAt = wake
	if best == -1 {
		return -1, false
	}
	return q.RemoveIssued(best), true
}

// Window exposes the issue window so the core can run the wakeup/select
// scan inline (a direct method call per entry instead of a closure hop).
// Callers may update entries' NotBefore and must pair each readiness
// evaluation with CountWakeup; issue via RemoveIssued.
func (q *IssueQueue) Window() []QueueEntry { return q.window }

// CountWakeup records one wakeup-scan entry evaluation (power).
func (q *IssueQueue) CountWakeup() { q.Reads++ }

// RemoveIssued removes window entry i, counting the issue, and returns
// its id.
func (q *IssueQueue) RemoveIssued(i int) int32 {
	id := q.window[i].ID
	q.window = append(q.window[:i], q.window[i+1:]...)
	q.IssueCount++
	return id
}

// Occupancy returns the number of entries in the window and prescheduler.
func (q *IssueQueue) Occupancy() int { return len(q.window) + q.presCount }

// WindowOccupancy returns the number of entries in the issue window only.
func (q *IssueQueue) WindowOccupancy() int { return len(q.window) }

// MOBEntry is one slot of the memory order buffer.
type MOBEntry struct {
	Seq         uint64
	IsStore     bool
	Line        uint64 // cache-line address, valid once AddrKnownAt set
	AddrKnownAt uint64 // NeverReady until the address reaches this cluster
	Done        bool
}

// MOB is the memory order buffer of one cluster.  Stores allocate a slot
// in every cluster's MOB so that loads can disambiguate locally (§2 of
// the paper); loads allocate a slot only in their own cluster.
//
// Entries live in a fixed backing array as a head-compacted deque (the
// head slides forward on release and the live span is memmoved back to
// the front when the tail hits the end), so steady-state allocation and
// release never touch the allocator and scans stay contiguous.  The MOB
// additionally tracks the oldest pending store whose address is still
// unknown, which lets the per-cycle wakeup polling of blocked loads
// answer "not yet" in O(1) instead of rescanning the buffer.
type MOB struct {
	buf      []MOBEntry // backing, 2x capacity
	head     int        // live entries are buf[head : head+count]
	count    int
	capacity int
	// unknownStores counts live, not-done stores whose AddrKnownAt is
	// still NeverReady; minUnknownSeq is the smallest Seq among them
	// (valid only when unknownStores > 0).
	unknownStores int
	minUnknownSeq uint64
	// Activity counters.
	Writes uint64
	Reads  uint64
}

// NewMOB builds a memory order buffer with the given capacity (Table 1:
// 96 entries).
func NewMOB(capacity int) *MOB {
	if capacity < 1 {
		panic("backend: MOB capacity must be positive")
	}
	return &MOB{buf: make([]MOBEntry, 2*capacity), capacity: capacity}
}

// entries returns the live span.
func (m *MOB) entries() []MOBEntry { return m.buf[m.head : m.head+m.count] }

// CanAlloc reports whether a slot is free.
func (m *MOB) CanAlloc() bool { return m.count < m.capacity }

// Alloc appends an entry in program order.  ok is false when full.
// Callers must allocate in non-decreasing Seq order.
func (m *MOB) Alloc(seq uint64, isStore bool) bool {
	if m.count >= m.capacity {
		return false
	}
	if m.count > 0 && m.buf[m.head+m.count-1].Seq > seq {
		panic("backend: MOB allocation out of program order")
	}
	if m.head+m.count == len(m.buf) {
		// Tail hit the end of the backing array: slide the live span back
		// to the front (amortized O(1): at most once per capacity allocs).
		copy(m.buf, m.buf[m.head:m.head+m.count])
		m.head = 0
	}
	m.buf[m.head+m.count] = MOBEntry{Seq: seq, IsStore: isStore, AddrKnownAt: NeverReady}
	m.count++
	if isStore {
		if m.unknownStores == 0 {
			m.minUnknownSeq = seq // allocation order is non-decreasing
		}
		m.unknownStores++
	}
	m.Writes++
	return true
}

// noteAddrKnown updates the unknown-store tracking when e's address
// transitions away from NeverReady (or e leaves the buffer still
// unknown).
func (m *MOB) noteAddrKnown(seq uint64) {
	m.unknownStores--
	if m.unknownStores > 0 && seq == m.minUnknownSeq {
		for i := range m.entries() {
			e := &m.entries()[i]
			if e.IsStore && !e.Done && e.AddrKnownAt == NeverReady {
				m.minUnknownSeq = e.Seq
				return
			}
		}
		// Tracking got inconsistent; fail loudly rather than deadlock.
		panic("backend: MOB unknown-store count has no matching entry")
	}
}

// SetAddr records that the address of the memory op with sequence seq is
// known at this cluster from cycle c on.
func (m *MOB) SetAddr(seq uint64, line uint64, c uint64) {
	es := m.entries()
	for i := range es {
		if es[i].Seq == seq {
			wasUnknown := es[i].IsStore && !es[i].Done && es[i].AddrKnownAt == NeverReady
			es[i].Line = line
			es[i].AddrKnownAt = c
			if wasUnknown {
				m.noteAddrKnown(seq) // after the update: the rescan must not re-find seq
			}
			m.Writes++
			return
		}
	}
	// The entry may already have been released (e.g. a store committed
	// before a straggling broadcast); that is harmless.
}

// Disambiguate checks whether a load with sequence seq and line address
// line may issue at cycle now: every older store must have a known
// address by now.  It returns ok and, when ok, whether an older store to
// the same line provides forwarding.
// Wakeup polling calls this every cycle, so it does not count toward the
// activity counters; core counts one search per executed memory op via
// CountSearch.
func (m *MOB) Disambiguate(seq uint64, line uint64, now uint64) (ok, forward bool) {
	if m.unknownStores > 0 && m.minUnknownSeq < seq {
		// An older store's address is not even computed yet: the common
		// blocked-load poll answers without scanning.
		return false, false
	}
	es := m.entries()
	for i := range es {
		e := &es[i]
		if e.Seq >= seq {
			break
		}
		if !e.IsStore || e.Done {
			continue
		}
		if e.AddrKnownAt == NeverReady || e.AddrKnownAt > now {
			return false, false
		}
		if e.Line == line {
			forward = true // youngest older store wins; keep scanning
		}
	}
	return true, forward
}

// CountSearch records one associative disambiguation search (power).
func (m *MOB) CountSearch() { m.Reads++ }

// Release marks the entry with sequence seq done and compacts the head.
func (m *MOB) Release(seq uint64) {
	es := m.entries()
	for i := range es {
		if es[i].Seq == seq {
			wasUnknown := es[i].IsStore && !es[i].Done && es[i].AddrKnownAt == NeverReady
			es[i].Done = true
			if wasUnknown {
				// Defensive: a store leaving with its address never set
				// must not wedge the unknown-store fast path.
				m.noteAddrKnown(seq)
			}
			break
		}
	}
	// Pop done entries from the head to free capacity in order.
	for m.count > 0 && m.buf[m.head].Done {
		m.head++
		m.count--
	}
	if m.count == 0 {
		m.head = 0
	}
}

// Occupancy returns the number of live slots.
func (m *MOB) Occupancy() int { return m.count }

// FU models the unpipelined functional units (dividers); pipelined units
// accept one operation per cycle through their issue queue and need no
// extra state.
type FU struct {
	nextFree uint64
	// Ops counts executed operations (pipelined and not) for power.
	Ops uint64
}

// CanStart reports whether an unpipelined operation could start at cycle
// now without mutating the unit.
func (f *FU) CanStart(now uint64) bool { return f.nextFree <= now }

// TryStart attempts to start an unpipelined operation of the given
// latency at cycle now; ok is false if the unit is busy.
func (f *FU) TryStart(now uint64, latency int, pipelined bool) bool {
	if !pipelined && f.nextFree > now {
		return false
	}
	if !pipelined {
		f.nextFree = now + uint64(latency)
	}
	f.Ops++
	return true
}

// Cluster bundles the structures of one backend cluster.
type Cluster struct {
	Index  int
	Queues [NumQueues]*IssueQueue
	IntRF  *RegFile
	FPRF   *RegFile
	Mob    *MOB
	IntFU  FU
	FPFU   FU
	// DTLBAccesses and DL1 activity are tracked by the core's caches;
	// these counters cover the remaining power-relevant events.
	AgenOps uint64
}

// Config sizes one cluster (defaults follow Table 1).
type Config struct {
	IntRegs      int // 160
	FPRegs       int // 160
	IntQ         int // 40
	FPQ          int // 40
	CopyQ        int // 40
	MemQ         int // 96
	Prescheduler int // 20 entries per prescheduler queue
	MOBEntries   int // memory order buffer slots
}

// NewCluster builds a cluster with the given index and sizes.
func NewCluster(index int, cfg Config) *Cluster {
	c := &Cluster{
		Index: index,
		IntRF: NewRegFile(cfg.IntRegs),
		FPRF:  NewRegFile(cfg.FPRegs),
		Mob:   NewMOB(cfg.MOBEntries),
	}
	c.Queues[IntQueue] = NewIssueQueue(IntQueue, cfg.IntQ, cfg.Prescheduler)
	c.Queues[FPQueue] = NewIssueQueue(FPQueue, cfg.FPQ, cfg.Prescheduler)
	c.Queues[CopyQueue] = NewIssueQueue(CopyQueue, cfg.CopyQ, cfg.Prescheduler)
	c.Queues[MemQueue] = NewIssueQueue(MemQueue, cfg.MemQ, cfg.Prescheduler)
	return c
}
