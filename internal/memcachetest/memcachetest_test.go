package memcachetest

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"
)

// dial returns a raw protocol connection plus a line-oriented reader.
func dial(t *testing.T, s *Server) (net.Conn, *bufio.Reader) {
	t.Helper()
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn, bufio.NewReader(conn)
}

func line(t *testing.T, r *bufio.Reader) string {
	t.Helper()
	l, err := r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	return strings.TrimRight(l, "\r\n")
}

func TestProtocolRoundTrip(t *testing.T) {
	s := Start(t)
	conn, r := dial(t, s)

	fmt.Fprint(conn, "set greeting 7 0 5\r\nhello\r\n")
	if got := line(t, r); got != "STORED" {
		t.Fatalf("set answered %q", got)
	}
	fmt.Fprint(conn, "get greeting missing\r\n")
	if got := line(t, r); got != "VALUE greeting 7 5" {
		t.Fatalf("get header %q", got)
	}
	if got := line(t, r); got != "hello" {
		t.Fatalf("get data %q", got)
	}
	if got := line(t, r); got != "END" {
		t.Fatalf("get trailer %q", got)
	}

	fmt.Fprint(conn, "delete greeting\r\n")
	if got := line(t, r); got != "DELETED" {
		t.Fatalf("delete answered %q", got)
	}
	fmt.Fprint(conn, "delete greeting\r\n")
	if got := line(t, r); got != "NOT_FOUND" {
		t.Fatalf("second delete answered %q", got)
	}

	c := s.Counts()
	if c.Sets != 1 || c.Gets != 1 || c.GetKeys != 2 || c.MaxBatch != 2 {
		t.Errorf("counts = %+v", c)
	}
}

func TestProtocolExpiry(t *testing.T) {
	s := Start(t)
	base := time.Unix(1_700_000_000, 0)
	now := base
	s.SetNow(func() time.Time { return now })
	conn, r := dial(t, s)

	fmt.Fprint(conn, "set k 0 30 1\r\nx\r\n")
	if got := line(t, r); got != "STORED" {
		t.Fatalf("set answered %q", got)
	}
	fmt.Fprint(conn, "get k\r\n")
	if got := line(t, r); got != "VALUE k 0 1" {
		t.Fatalf("get before expiry %q", got)
	}
	line(t, r) // data
	line(t, r) // END

	now = base.Add(31 * time.Second)
	fmt.Fprint(conn, "get k\r\n")
	if got := line(t, r); got != "END" {
		t.Fatalf("expired get answered %q", got)
	}
	if s.Len() != 0 {
		t.Errorf("expired key not lazily dropped: %d entries", s.Len())
	}
}

func TestProtocolErrors(t *testing.T) {
	s := Start(t)
	conn, r := dial(t, s)

	fmt.Fprint(conn, "bogus\r\n")
	if got := line(t, r); got != "ERROR" {
		t.Fatalf("unknown command answered %q", got)
	}
	// Key with an interior control byte is rejected before the data
	// block is trusted.
	fmt.Fprint(conn, "set bad\x01key 0 0 1\r\nx\r\n")
	if got := line(t, r); !strings.HasPrefix(got, "CLIENT_ERROR") {
		t.Fatalf("bad key answered %q", got)
	}
	// A data block not terminated by \r\n poisons the stream.
	fmt.Fprint(conn, "set k 0 0 1\r\nxZZ")
	if got := line(t, r); !strings.HasPrefix(got, "CLIENT_ERROR") {
		t.Fatalf("bad data chunk answered %q", got)
	}
}
