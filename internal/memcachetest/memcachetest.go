// Package memcachetest is a small in-process memcached server speaking
// the text protocol — just enough of it (get/gets multi-key reads, set
// with flags and relative expiry, delete, flush_all, stats, version,
// quit) for
// resultstore.Remote's tests, the chaos suite and the distributed
// example to run a "shared cache tier" without a memcached binary in
// the container.
//
// The server is deliberately observable where a real memcached is not:
// it counts every command, remembers the largest multi-get batch it has
// seen (the client's batching tests pin on it), injects a fixed
// per-command delay on demand (to hold a client worker busy while more
// gets queue behind it), and takes its clock from an injectable now
// func so TTL expiry is testable without sleeping.
package memcachetest

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// entry is one stored value.
type entry struct {
	val       []byte
	flags     uint32
	expiresAt time.Time // zero = never expires
}

// Counts is a snapshot of the server's command counters.
type Counts struct {
	// Gets counts get/gets commands (each command once, however many
	// keys it carried).
	Gets uint64
	// GetKeys counts the keys requested across all get commands.
	GetKeys uint64
	// Sets counts set commands.
	Sets uint64
	// MaxBatch is the largest number of keys seen on one get command.
	MaxBatch int
}

// Server is the in-process memcached stand-in.
type Server struct {
	ln net.Listener

	mu     sync.Mutex
	data   map[string]entry
	conns  map[net.Conn]struct{}
	closed bool
	now    func() time.Time

	gets     atomic.Uint64
	getKeys  atomic.Uint64
	sets     atomic.Uint64
	maxBatch atomic.Int64

	// delay is a fixed pause injected before answering any command —
	// nanoseconds, set through SetDelay.
	delay atomic.Int64

	wg sync.WaitGroup
}

// New starts a server on a free localhost port.
func New() (*Server, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("memcachetest: listen: %w", err)
	}
	s := &Server{
		ln:    ln,
		data:  map[string]entry{},
		conns: map[net.Conn]struct{}{},
		now:   time.Now,
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Start is New with test-scoped cleanup.
func Start(t testing.TB) *Server {
	t.Helper()
	s, err := New()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// Addr returns the host:port the server listens on.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// SetNow replaces the server's clock — TTL expiry tests advance it
// instead of sleeping.
func (s *Server) SetNow(now func() time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.now = now
}

// SetDelay injects a fixed pause before every command is answered.
func (s *Server) SetDelay(d time.Duration) { s.delay.Store(int64(d)) }

// Len returns the number of stored (possibly expired) keys.
func (s *Server) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.data)
}

// liveItems counts the stored keys that have not expired — what the
// `stats` command reports as curr_items.
func (s *Server) liveItems() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	n := 0
	for _, e := range s.data {
		if e.expiresAt.IsZero() || now.Before(e.expiresAt) {
			n++
		}
	}
	return n
}

// Counts returns the command counters.
func (s *Server) Counts() Counts {
	return Counts{
		Gets:     s.gets.Load(),
		GetKeys:  s.getKeys.Load(),
		Sets:     s.sets.Load(),
		MaxBatch: int(s.maxBatch.Load()),
	}
}

// Close stops the listener and severs every open connection, so a
// "dead cache server" in a test fails clients immediately instead of
// hanging them until a timeout.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serve(conn)
	}
}

func (s *Server) dropConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	conn.Close()
}

// serve handles one connection until it closes or sends quit.
func (s *Server) serve(conn net.Conn) {
	defer s.wg.Done()
	defer s.dropConn(conn)
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		line, err := readLine(r)
		if err != nil {
			return
		}
		if d := s.delay.Load(); d > 0 {
			time.Sleep(time.Duration(d))
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "get", "gets":
			s.handleGet(w, fields[1:])
		case "set":
			if !s.handleSet(r, w, fields[1:]) {
				return
			}
		case "delete":
			s.handleDelete(w, fields[1:])
		case "flush_all":
			s.mu.Lock()
			s.data = map[string]entry{}
			s.mu.Unlock()
			fmt.Fprint(w, "OK\r\n")
		case "stats":
			fmt.Fprintf(w, "STAT curr_items %d\r\n", s.liveItems())
			fmt.Fprintf(w, "STAT cmd_get %d\r\n", s.gets.Load())
			fmt.Fprintf(w, "STAT cmd_set %d\r\n", s.sets.Load())
			fmt.Fprint(w, "END\r\n")
		case "version":
			fmt.Fprint(w, "VERSION memcachetest\r\n")
		case "quit":
			w.Flush()
			return
		default:
			fmt.Fprint(w, "ERROR\r\n")
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

func (s *Server) handleGet(w *bufio.Writer, keys []string) {
	s.gets.Add(1)
	s.getKeys.Add(uint64(len(keys)))
	for {
		cur := s.maxBatch.Load()
		if int64(len(keys)) <= cur || s.maxBatch.CompareAndSwap(cur, int64(len(keys))) {
			break
		}
	}
	s.mu.Lock()
	now := s.now()
	type hit struct {
		key string
		e   entry
	}
	var hits []hit
	for _, key := range keys {
		if e, ok := s.data[key]; ok {
			if !e.expiresAt.IsZero() && !now.Before(e.expiresAt) {
				delete(s.data, key) // lazy expiry, like the real thing
				continue
			}
			hits = append(hits, hit{key, e})
		}
	}
	s.mu.Unlock()
	for _, h := range hits {
		fmt.Fprintf(w, "VALUE %s %d %d\r\n", h.key, h.e.flags, len(h.e.val))
		w.Write(h.e.val)
		fmt.Fprint(w, "\r\n")
	}
	fmt.Fprint(w, "END\r\n")
}

// handleSet parses `set <key> <flags> <exptime> <bytes> [noreply]` plus
// its data block.  It returns false when the connection is beyond
// recovery (a short or unterminated data block).
func (s *Server) handleSet(r *bufio.Reader, w *bufio.Writer, args []string) bool {
	if len(args) < 4 || len(args) > 5 {
		fmt.Fprint(w, "ERROR\r\n")
		return true
	}
	key := args[0]
	flags, err1 := strconv.ParseUint(args[1], 10, 32)
	exptime, err2 := strconv.ParseInt(args[2], 10, 64)
	size, err3 := strconv.ParseInt(args[3], 10, 32)
	noreply := len(args) == 5 && args[4] == "noreply"
	if err1 != nil || err2 != nil || err3 != nil || size < 0 {
		// Without a parseable size the data block can't be skipped; the
		// stream is beyond recovery.
		fmt.Fprint(w, "CLIENT_ERROR bad command line format\r\n")
		return true
	}
	block := make([]byte, size+2) // data + trailing \r\n
	if _, err := io.ReadFull(r, block); err != nil {
		return false
	}
	if !validKey(key) {
		// The block is consumed either way, keeping the stream in sync.
		fmt.Fprint(w, "CLIENT_ERROR bad command line format\r\n")
		return true
	}
	if block[size] != '\r' || block[size+1] != '\n' {
		fmt.Fprint(w, "CLIENT_ERROR bad data chunk\r\n")
		return true
	}
	s.sets.Add(1)
	var expiresAt time.Time
	s.mu.Lock()
	if exptime > 0 {
		// Relative seconds; the real protocol switches to absolute unix
		// time past 30 days, which no test here needs.
		expiresAt = s.now().Add(time.Duration(exptime) * time.Second)
	}
	s.data[key] = entry{val: block[:size:size], flags: uint32(flags), expiresAt: expiresAt}
	s.mu.Unlock()
	if !noreply {
		fmt.Fprint(w, "STORED\r\n")
	}
	return true
}

func (s *Server) handleDelete(w *bufio.Writer, args []string) {
	if len(args) < 1 {
		fmt.Fprint(w, "ERROR\r\n")
		return
	}
	s.mu.Lock()
	_, ok := s.data[args[0]]
	delete(s.data, args[0])
	s.mu.Unlock()
	if ok {
		fmt.Fprint(w, "DELETED\r\n")
	} else {
		fmt.Fprint(w, "NOT_FOUND\r\n")
	}
}

// validKey applies the protocol's key rules: 1..250 bytes, no
// whitespace or control characters.
func validKey(key string) bool {
	if len(key) == 0 || len(key) > 250 {
		return false
	}
	for i := 0; i < len(key); i++ {
		if key[i] <= ' ' || key[i] == 0x7f {
			return false
		}
	}
	return true
}

// readLine reads one \r\n-terminated line (tolerating bare \n).
func readLine(r *bufio.Reader) (string, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}
