GO ?= go

.PHONY: check fmt vet build test race bench

# The full tier-1 gate: formatting, vet, build, tests (race-enabled —
# the scheduler/simd coalescing paths are explicitly concurrent).
check: fmt vet build race

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout 30m ./...

bench:
	$(GO) test -bench=. -benchtime=1x .
