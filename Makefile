GO ?= go

# Pinned staticcheck release (must support the toolchain in go.mod).
# CI installs exactly this version; locally the target runs whatever
# `staticcheck` is on PATH and skips with an install hint otherwise.
STATICCHECK_VERSION ?= 2025.1.1

.PHONY: check fmt vet staticcheck print-staticcheck-version build test race bench docs-check demo chaos fuzz-short cover-resultstore

# The full tier-1 gate: formatting, vet, staticcheck, build, tests
# (race-enabled — the scheduler/simd coalescing paths are explicitly
# concurrent), docs, a deterministic fuzz pass over segment replay, and
# the result-store coverage floor.
check: fmt vet staticcheck build race docs-check fuzz-short cover-resultstore

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# CI reads the pin from here so the Makefile stays the single source
# of truth for the staticcheck version.
print-staticcheck-version:
	@echo $(STATICCHECK_VERSION)

staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION))"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout 30m ./...

# Docs gate: the three docs exist and are linked from the README, every
# relative markdown link in README + docs/ resolves, and gofmt/vet cover
# the result-store package the docs describe.
docs-check:
	@for f in docs/ARCHITECTURE.md docs/API.md docs/OPERATIONS.md; do \
		test -f "$$f" || { echo "docs-check: missing $$f"; exit 1; }; \
		grep -q "$$f" README.md || { echo "docs-check: README.md does not link $$f"; exit 1; }; \
	done
	@fail=0; for f in README.md docs/*.md; do \
		dir=$$(dirname "$$f"); \
		for link in $$(grep -oE '\]\([^)[:space:]]+\)' "$$f" | sed -e 's/^](//' -e 's/)$$//' -e 's/#.*//'); do \
			case "$$link" in http://*|https://*|mailto:*|"") continue ;; esac; \
			test -e "$$dir/$$link" || { echo "docs-check: $$f links missing $$link"; fail=1; }; \
		done; \
	done; exit $$fail
	@out="$$(gofmt -l pkg/resultstore)"; if [ -n "$$out" ]; then \
		echo "docs-check: gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./pkg/resultstore/...

# Tier-1 benchmarks with allocation accounting; raw output passes
# through and the parsed results land in BENCH_results.json.
BENCH_TIER1 = ^(BenchmarkSimulatorThroughput|BenchmarkTable1Config|BenchmarkTraceCacheAccess|BenchmarkSchedulerDispatch)$$

# Two steps, not a pipe: a benchmark build/run failure must fail the
# target instead of being masked by benchjson's exit status.
bench:
	$(GO) test -run NONE -bench '$(BENCH_TIER1)' -benchmem -benchtime 3x . ./pkg/scheduler > BENCH_raw.out
	$(GO) run ./cmd/benchjson -o BENCH_results.json < BENCH_raw.out && rm -f BENCH_raw.out

# Fast regression gate: the short tier-1 benchmarks, the AllocsPerRun
# tests that pin the zero-allocation interval pipeline, and the pinned
# cycles/op expectation for BenchmarkSimulatorThroughput (committed in
# cycles_pin_test.go alongside the golden fixtures).
bench-short:
	$(GO) test -run 'ZeroAlloc|SteadyStateAllocs' -v ./internal/sim
	$(GO) test -run 'SimulatorThroughputCyclesPinned' -v .
	$(GO) test -run NONE -bench '$(BENCH_TIER1)' -benchmem -benchtime 1x . ./pkg/scheduler

bench-full:
	$(GO) test -bench=. -benchtime=1x .

# Headless end-to-end demo: the distributed serving tier through every
# failure mode (failover, cache tiers, fleet restart, self-managing
# ring).  Exits non-zero if the lifecycle leaks a client-visible error,
# so CI runs it as an integration smoke test.
demo:
	$(GO) run ./examples/distributed

# Deterministic fuzz smoke: 10 seconds of native fuzzing over disk
# segment replay (differential against an independent reference
# decoder).  Catches framing regressions in CI without the open-ended
# runtime of a real fuzz campaign; run `go test -fuzz FuzzSegmentReplay
# ./pkg/resultstore` with no -fuzztime to hunt for longer.
FUZZTIME ?= 10s
fuzz-short:
	$(GO) test -run '^$$' -fuzz '^FuzzSegmentReplay$$' -fuzztime $(FUZZTIME) ./pkg/resultstore

# Coverage floor for the store package: every backend rides one
# conformance suite, so coverage here is cheap to keep and expensive to
# lose.  Writes coverage-resultstore.out for CI to upload.
RESULTSTORE_COVER_MIN ?= 85
cover-resultstore:
	$(GO) test -coverprofile=coverage-resultstore.out ./pkg/resultstore/
	@total=$$($(GO) tool cover -func=coverage-resultstore.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "pkg/resultstore coverage: $$total% (floor $(RESULTSTORE_COVER_MIN)%)"; \
	awk "BEGIN{exit !($$total >= $(RESULTSTORE_COVER_MIN))}" || { \
		echo "cover-resultstore: coverage $$total% is below the $(RESULTSTORE_COVER_MIN)% floor"; exit 1; }

# Seeded chaos integration suite: a simd fleet behind fault-injecting
# proxies (latency spikes, injected 500s, a flapping backend) driven
# through the real scheduler — zero client-visible errors in strict
# mode, correct PARTIAL-ERROR accounting in degraded mode, passive
# breaker + quarantine before any probe round, and 503 + Retry-After
# shedding from a saturated backend, all asserted via /metrics.
chaos:
	$(GO) test -run TestChaos -v ./internal/chaos
